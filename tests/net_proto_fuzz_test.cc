// Randomized fuzz of the frame decoders: ~1e5 seeded iterations mutating
// valid frames (length prefix, opcode/status byte, truncation, garbage
// splices, random splits across reads) asserting the decoder never reads
// past its buffer and always lands in one of the three documented outcomes.
//
// Every candidate buffer is copied into an exactly-sized heap allocation
// before decoding, so a single-byte overread trips AddressSanitizer instead
// of silently hitting slack space — this test is part of the ASan/UBSan CI
// suite for exactly that reason.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "stats/rng.h"

namespace cbtree {
namespace net {
namespace {

/// Decodes from an exactly-sized heap copy (ASan red zones on both ends).
DecodeStatus DecodeRequestExact(const std::string& buffer, Request* out,
                                size_t* consumed) {
  std::unique_ptr<uint8_t[]> exact(new uint8_t[buffer.size()]);
  std::memcpy(exact.get(), buffer.data(), buffer.size());
  return DecodeRequest(exact.get(), buffer.size(), out, consumed);
}

DecodeStatus DecodeResponseExact(const std::string& buffer, Response* out,
                                 size_t* consumed) {
  std::unique_ptr<uint8_t[]> exact(new uint8_t[buffer.size()]);
  std::memcpy(exact.get(), buffer.data(), buffer.size());
  return DecodeResponse(exact.get(), buffer.size(), out, consumed);
}

std::string ValidRequestWire(Rng& rng) {
  Request request;
  request.op = static_cast<OpCode>(1 + rng.NextBounded(3));
  request.id = rng.Next();
  request.key = static_cast<Key>(rng.Next());
  request.value = static_cast<Value>(rng.Next());
  std::string wire;
  AppendRequest(request, &wire);
  return wire;
}

std::string ValidResponseWire(Rng& rng) {
  Response response;
  // One in four responses is the variable-length kStats admin frame, so the
  // mutation corpus covers hostile truncations/length rewrites of it too.
  if (rng.NextBounded(4) == 0) {
    response.status = Status::kStats;
    response.id = rng.Next();
    size_t body_size = rng.NextBounded(128);
    response.body.reserve(body_size);
    for (size_t i = 0; i < body_size; ++i) {
      response.body.push_back(static_cast<char>(rng.Next()));
    }
  } else {
    response.status = static_cast<Status>(1 + rng.NextBounded(9));
    response.id = rng.Next();
    response.value = static_cast<Value>(rng.Next());
  }
  std::string wire;
  AppendResponse(response, &wire);
  return wire;
}

/// Applies one random corruption: byte flip, length rewrite, truncation,
/// prefix/suffix garbage, or duplication. May also leave the frame intact.
std::string Mutate(Rng& rng, std::string wire) {
  switch (rng.NextBounded(8)) {
    case 0:  // pristine
      break;
    case 1: {  // flip one byte anywhere (includes opcode/status)
      if (!wire.empty()) {
        size_t at = rng.NextBounded(wire.size());
        wire[at] = static_cast<char>(rng.Next());
      }
      break;
    }
    case 2: {  // rewrite the length prefix with an arbitrary u32
      uint32_t bogus = static_cast<uint32_t>(rng.Next());
      for (int i = 0; i < 4 && static_cast<size_t>(i) < wire.size(); ++i) {
        wire[i] = static_cast<char>((bogus >> (8 * i)) & 0xff);
      }
      break;
    }
    case 3:  // truncate
      wire.resize(rng.NextBounded(wire.size() + 1));
      break;
    case 4: {  // append garbage
      size_t extra = rng.NextBounded(40);
      for (size_t i = 0; i < extra; ++i) {
        wire.push_back(static_cast<char>(rng.Next()));
      }
      break;
    }
    case 5: {  // prepend garbage (desynchronized stream)
      std::string junk;
      size_t extra = 1 + rng.NextBounded(8);
      for (size_t i = 0; i < extra; ++i) {
        junk.push_back(static_cast<char>(rng.Next()));
      }
      wire = junk + wire;
      break;
    }
    case 6:  // two frames back to back (pipelining)
      wire += wire;
      break;
    default: {  // pure noise, no valid frame at all
      size_t size = rng.NextBounded(64);
      wire.clear();
      for (size_t i = 0; i < size; ++i) {
        wire.push_back(static_cast<char>(rng.Next()));
      }
      break;
    }
  }
  return wire;
}

TEST(NetProtoFuzzTest, RequestDecoderNeverOverreadsOrMisclassifies) {
  Rng rng(0xfeedface2026ull);
  constexpr int kIterations = 50000;
  int ok = 0, need_more = 0, error = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    std::string wire = Mutate(rng, ValidRequestWire(rng));
    Request out;
    size_t consumed = 0;
    DecodeStatus status = DecodeRequestExact(wire, &out, &consumed);
    switch (status) {
      case DecodeStatus::kOk:
        ++ok;
        // A decoded frame consumed exactly one frame's bytes and yielded a
        // representable request.
        ASSERT_EQ(consumed, kRequestFrameSize);
        ASSERT_LE(consumed, wire.size());
        ASSERT_TRUE(IsValidOpCode(static_cast<uint8_t>(out.op)));
        break;
      case DecodeStatus::kNeedMore:
        ++need_more;
        // Only a strict prefix of a frame may ask for more bytes.
        ASSERT_LT(wire.size(), kRequestFrameSize);
        break;
      case DecodeStatus::kError:
        ++error;
        break;
    }
  }
  // The mutator keeps a healthy mix alive: every outcome must be reachable,
  // or the fuzz lost its teeth silently.
  EXPECT_GT(ok, 0);
  EXPECT_GT(need_more, 0);
  EXPECT_GT(error, 0);
}

TEST(NetProtoFuzzTest, ResponseDecoderNeverOverreadsOrMisclassifies) {
  Rng rng(0xdecafbad2026ull);
  constexpr int kIterations = 50000;
  int ok = 0, need_more = 0, error = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    std::string wire = Mutate(rng, ValidResponseWire(rng));
    Response out;
    size_t consumed = 0;
    DecodeStatus status = DecodeResponseExact(wire, &out, &consumed);
    // The declared payload, when the prefix is present: the decoder's own
    // view of how long the frame claims to be.
    uint64_t declared = 0;
    if (wire.size() >= 4) {
      for (int i = 0; i < 4; ++i) {
        declared |= static_cast<uint64_t>(static_cast<uint8_t>(wire[i]))
                    << (8 * i);
      }
    }
    switch (status) {
      case DecodeStatus::kOk:
        ++ok;
        ASSERT_LE(consumed, wire.size());
        ASSERT_TRUE(IsValidStatus(static_cast<uint8_t>(out.status)));
        if (out.status == Status::kStats) {
          // The variable frame consumed exactly what its prefix declared,
          // and the body length follows from it.
          ASSERT_EQ(consumed, 4 + declared);
          ASSERT_EQ(out.body.size(), declared - kStatsHeaderSize);
          ASSERT_LE(declared, kMaxStatsPayload);
        } else {
          ASSERT_EQ(consumed, kResponseFrameSize);
        }
        break;
      case DecodeStatus::kNeedMore:
        ++need_more;
        // More bytes may only be requested for a strict prefix of a frame
        // whose declared length is within protocol bounds — a hostile
        // length never turns into a buffering demand.
        if (wire.size() >= 5) {
          ASSERT_GE(declared, kStatsHeaderSize);
          ASSERT_LE(declared, kMaxStatsPayload);
          if (static_cast<uint8_t>(wire[4]) ==
              static_cast<uint8_t>(Status::kStats)) {
            ASSERT_LT(wire.size(), 4 + declared);
          } else {
            ASSERT_EQ(declared, kResponsePayloadSize);
            ASSERT_LT(wire.size(), kResponseFrameSize);
          }
        } else if (wire.size() == 4) {
          ASSERT_GE(declared, kStatsHeaderSize);
          ASSERT_LE(declared, kMaxStatsPayload);
        }
        break;
      case DecodeStatus::kError:
        ++error;
        break;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(need_more, 0);
  EXPECT_GT(error, 0);
}

/// Streaming splice: valid frames delivered in random-sized chunks (the
/// read-buffer path) must decode to exactly the original sequence no matter
/// where the reads split.
TEST(NetProtoFuzzTest, RandomSplitsAcrossReadsReassembleExactly) {
  Rng rng(0xabad1dea2026ull);
  constexpr int kRounds = 2000;
  for (int round = 0; round < kRounds; ++round) {
    const size_t frames = 1 + rng.NextBounded(8);
    std::vector<Request> sent;
    std::string wire;
    for (size_t i = 0; i < frames; ++i) {
      Request request;
      request.op = static_cast<OpCode>(1 + rng.NextBounded(3));
      request.id = rng.Next();
      request.key = static_cast<Key>(rng.Next());
      request.value = static_cast<Value>(rng.Next());
      sent.push_back(request);
      AppendRequest(request, &wire);
    }
    // Feed the stream in random chunks, decoding after every delivery like
    // the server's DrainReadBuffer does.
    std::string buffer;
    size_t fed = 0;
    std::vector<Request> decoded;
    while (fed < wire.size() || !buffer.empty()) {
      if (fed < wire.size()) {
        size_t chunk = 1 + rng.NextBounded(wire.size() - fed);
        buffer.append(wire, fed, chunk);
        fed += chunk;
      }
      for (;;) {
        Request out;
        size_t consumed = 0;
        std::unique_ptr<uint8_t[]> exact(new uint8_t[buffer.size()]);
        std::memcpy(exact.get(), buffer.data(), buffer.size());
        DecodeStatus status =
            DecodeRequest(exact.get(), buffer.size(), &out, &consumed);
        if (status != DecodeStatus::kOk) {
          ASSERT_EQ(status, DecodeStatus::kNeedMore)
              << "valid stream misread as error at round " << round;
          break;
        }
        decoded.push_back(out);
        buffer.erase(0, consumed);
      }
      if (fed >= wire.size() && buffer.size() < 4) {
        ASSERT_TRUE(buffer.empty()) << "trailing bytes after a full stream";
        break;
      }
    }
    ASSERT_EQ(decoded.size(), sent.size());
    for (size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(decoded[i].op, sent[i].op);
      EXPECT_EQ(decoded[i].id, sent[i].id);
      EXPECT_EQ(decoded[i].key, sent[i].key);
      EXPECT_EQ(decoded[i].value, sent[i].value);
    }
  }
}

/// Every possible prefix length of a valid frame: the decode outcome is a
/// strict function of the prefix length, with no overread at any size.
TEST(NetProtoFuzzTest, EveryTruncationPointIsHandled) {
  Rng rng(0x5eed5eedull);
  std::string wire = ValidRequestWire(rng);
  for (size_t cut = 0; cut <= wire.size(); ++cut) {
    Request out;
    size_t consumed = 0;
    DecodeStatus status =
        DecodeRequestExact(wire.substr(0, cut), &out, &consumed);
    if (cut < kRequestFrameSize) {
      EXPECT_EQ(status, DecodeStatus::kNeedMore) << "cut at " << cut;
    } else {
      EXPECT_EQ(status, DecodeStatus::kOk);
      EXPECT_EQ(consumed, kRequestFrameSize);
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace cbtree
