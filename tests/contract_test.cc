// Contract (death) tests: the library's CBTREE_CHECK preconditions must
// actually fire on misuse, in release builds included — a silent contract
// violation would corrupt measurements downstream.

#include <gtest/gtest.h>

#include "btree/btree.h"
#include "core/params.h"
#include "core/rw_queue.h"
#include "sim/lock_manager.h"
#include "stats/distributions.h"
#include "util/check.h"

namespace cbtree {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, CheckMacroAborts) {
  EXPECT_DEATH(CBTREE_CHECK(false) << "boom", "boom");
  EXPECT_DEATH(CBTREE_CHECK_EQ(1, 2), "CBTREE_CHECK failed");
}

TEST(ContractDeathTest, BTreeRejectsSentinelKey) {
  BTree tree(BTree::Options{5, MergePolicy::kAtEmpty});
  EXPECT_DEATH(tree.Insert(kInfKey, 1), "CBTREE_CHECK failed");
}

TEST(ContractDeathTest, BTreeRejectsTinyNodes) {
  EXPECT_DEATH(BTree(BTree::Options{2, MergePolicy::kAtEmpty}),
               "at least 3 entries");
}

TEST(ContractDeathTest, NodeStoreRejectsDoubleFree) {
  NodeStore store;
  NodeId id = store.Allocate(1);
  store.Free(id);
  EXPECT_DEATH(store.Free(id), "double free");
}

TEST(ContractDeathTest, BulkLoadRejectsUnsortedInput) {
  std::vector<std::pair<Key, Value>> entries = {{5, 0}, {3, 0}};
  EXPECT_DEATH(BTree::BulkLoad({5, MergePolicy::kAtEmpty}, entries),
               "sorted");
}

TEST(ContractDeathTest, MixMustSumToOne) {
  OperationMix mix{0.5, 0.5, 0.5};
  EXPECT_DEATH(mix.Validate(), "sum to 1");
}

TEST(ContractDeathTest, Corollary1NeedsInsertDominance) {
  // More deletes than inserts violates Corollary 1's premise.
  EXPECT_DEATH(
      MakeStructureParams(1000, 13, OperationMix{0.2, 0.3, 0.5}),
      "more inserts than deletes");
}

TEST(ContractDeathTest, RwQueueRejectsNegativeRates) {
  EXPECT_DEATH(SolveRwQueue({-1.0, 0.1, 1.0, 1.0}), "CBTREE_CHECK failed");
  EXPECT_DEATH(SolveRwQueue({0.1, 0.1, 0.0, 1.0}), "CBTREE_CHECK failed");
}

TEST(ContractDeathTest, LockManagerRejectsRelock) {
  double now = 0.0;
  LockManager locks([&now] { return now; });
  locks.Request(1, LockMode::kRead, 7, [] {});
  EXPECT_DEATH(locks.Request(1, LockMode::kWrite, 7, [] {}), "re-locks");
}

TEST(ContractDeathTest, LockManagerRejectsForeignRelease) {
  double now = 0.0;
  LockManager locks([&now] { return now; });
  locks.Request(1, LockMode::kWrite, 7, [] {});
  EXPECT_DEATH(locks.Release(1, 8), "does not hold");
}

TEST(ContractDeathTest, LockManagerRejectsFreeingLockedNode) {
  double now = 0.0;
  LockManager locks([&now] { return now; });
  locks.Request(1, LockMode::kWrite, 7, [] {});
  EXPECT_DEATH(locks.NotifyNodeFreed(1), "freed while locked");
}

TEST(ContractDeathTest, ExponentialRejectsNegativeMean) {
  Rng rng(1);
  EXPECT_DEATH(SampleExponential(rng, -1.0), "CBTREE_CHECK failed");
}

}  // namespace
}  // namespace cbtree
