#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "btree/btree.h"
#include "btree/tree_stats.h"
#include "btree/validate.h"

namespace cbtree {
namespace {

BTree MakeTree(int n = 5, MergePolicy policy = MergePolicy::kAtEmpty) {
  return BTree(BTree::Options{n, policy});
}

TEST(BTreeTest, EmptyTree) {
  BTree tree = MakeTree();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_FALSE(tree.Search(1).has_value());
  EXPECT_TRUE(ValidateTree(tree));
}

TEST(BTreeTest, InsertAndSearch) {
  BTree tree = MakeTree();
  EXPECT_TRUE(tree.Insert(10, 100));
  EXPECT_TRUE(tree.Insert(20, 200));
  EXPECT_TRUE(tree.Insert(5, 50));
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Search(10).value(), 100);
  EXPECT_EQ(tree.Search(20).value(), 200);
  EXPECT_EQ(tree.Search(5).value(), 50);
  EXPECT_FALSE(tree.Search(15).has_value());
}

TEST(BTreeTest, InsertDuplicateOverwrites) {
  BTree tree = MakeTree();
  EXPECT_TRUE(tree.Insert(1, 10));
  EXPECT_FALSE(tree.Insert(1, 20));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Search(1).value(), 20);
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTree tree = MakeTree(5);
  for (Key k = 0; k < 100; ++k) tree.Insert(k, k * 10);
  EXPECT_GT(tree.height(), 1);
  EXPECT_EQ(tree.size(), 100u);
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.Search(k).has_value()) << "key " << k;
    EXPECT_EQ(tree.Search(k).value(), k * 10);
  }
  auto result = ValidateTree(tree);
  EXPECT_TRUE(result) << result.error;
  EXPECT_GT(tree.restructure_stats().TotalSplits(), 0u);
  EXPECT_GT(tree.restructure_stats().root_splits, 0u);
}

TEST(BTreeTest, RootIdIsStableAcrossGrowth) {
  BTree tree = MakeTree(5);
  NodeId root = tree.root();
  for (Key k = 0; k < 1000; ++k) tree.Insert(k, k);
  EXPECT_EQ(tree.root(), root) << "the root must split in place";
}

TEST(BTreeTest, ReverseAndShuffledInsertionOrders) {
  for (int order = 0; order < 2; ++order) {
    BTree tree = MakeTree(7);
    std::vector<Key> keys;
    for (Key k = 0; k < 500; ++k) keys.push_back(k * 3 + 1);
    if (order == 0) {
      std::reverse(keys.begin(), keys.end());
    } else {
      // Deterministic shuffle.
      for (size_t i = keys.size(); i > 1; --i) {
        std::swap(keys[i - 1], keys[(i * 2654435761u) % i]);
      }
    }
    for (Key k : keys) tree.Insert(k, k);
    auto result = ValidateTree(tree);
    EXPECT_TRUE(result) << result.error;
    for (Key k : keys) EXPECT_TRUE(tree.Search(k).has_value());
  }
}

TEST(BTreeTest, DeleteMissingKeyIsNoop) {
  BTree tree = MakeTree();
  tree.Insert(1, 1);
  EXPECT_FALSE(tree.Delete(2));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, DeleteAtEmptyRemovesNodes) {
  BTree tree = MakeTree(5, MergePolicy::kAtEmpty);
  for (Key k = 0; k < 200; ++k) tree.Insert(k, k);
  size_t nodes_before = tree.store().live_count();
  // Delete a contiguous run to empty whole leaves.
  for (Key k = 0; k < 100; ++k) EXPECT_TRUE(tree.Delete(k));
  EXPECT_LT(tree.store().live_count(), nodes_before);
  // Links may dangle after merge-at-empty removals (documented); skip them.
  auto result = ValidateTree(tree, {.check_links = false});
  EXPECT_TRUE(result) << result.error;
  for (Key k = 100; k < 200; ++k) EXPECT_TRUE(tree.Search(k).has_value());
  for (Key k = 0; k < 100; ++k) EXPECT_FALSE(tree.Search(k).has_value());
}

TEST(BTreeTest, DeleteEverythingCollapsesToEmptyLeafRoot) {
  BTree tree = MakeTree(5, MergePolicy::kAtEmpty);
  for (Key k = 0; k < 300; ++k) tree.Insert(k, k);
  for (Key k = 0; k < 300; ++k) EXPECT_TRUE(tree.Delete(k)) << k;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.store().live_count(), 1u);
  // Reuse after total collapse.
  EXPECT_TRUE(tree.Insert(7, 70));
  EXPECT_EQ(tree.Search(7).value(), 70);
}

TEST(BTreeTest, InsertAfterRightmostDeletions) {
  // Removing the rightmost leaf forces the last-bound promotion path.
  BTree tree = MakeTree(5, MergePolicy::kAtEmpty);
  for (Key k = 0; k < 100; ++k) tree.Insert(k, k);
  for (Key k = 99; k >= 60; --k) EXPECT_TRUE(tree.Delete(k));
  auto result = ValidateTree(tree, {.check_links = false});
  EXPECT_TRUE(result) << result.error;
  // New large keys must be routable again.
  for (Key k = 200; k < 260; ++k) EXPECT_TRUE(tree.Insert(k, k));
  result = ValidateTree(tree, {.check_links = false});
  EXPECT_TRUE(result) << result.error;
  for (Key k = 200; k < 260; ++k) EXPECT_TRUE(tree.Search(k).has_value());
}

TEST(BTreeTest, MergeAtHalfKeepsOccupancy) {
  BTree tree = MakeTree(6, MergePolicy::kAtHalf);
  for (Key k = 0; k < 500; ++k) tree.Insert(k, k);
  for (Key k = 0; k < 400; ++k) EXPECT_TRUE(tree.Delete(k));
  auto result =
      ValidateTree(tree, {.check_links = true, .check_min_occupancy = true});
  EXPECT_TRUE(result) << result.error;
  for (Key k = 400; k < 500; ++k) EXPECT_TRUE(tree.Search(k).has_value());
  EXPECT_GT(tree.restructure_stats().TotalMerges() +
                tree.restructure_stats().borrows[1],
            0u);
}

TEST(BTreeTest, MergeAtHalfCollapsesRoot) {
  BTree tree = MakeTree(5, MergePolicy::kAtHalf);
  for (Key k = 0; k < 200; ++k) tree.Insert(k, k);
  int tall = tree.height();
  for (Key k = 0; k < 195; ++k) tree.Delete(k);
  EXPECT_LT(tree.height(), tall);
  auto result =
      ValidateTree(tree, {.check_links = true, .check_min_occupancy = true});
  EXPECT_TRUE(result) << result.error;
}

TEST(BTreeTest, ScanReturnsSortedRange) {
  BTree tree = MakeTree(5);
  for (Key k = 0; k < 100; ++k) tree.Insert(k * 2, k);
  std::vector<std::pair<Key, Value>> out;
  size_t n = tree.Scan(10, 30, 100, &out);
  ASSERT_EQ(n, 11u);  // 10, 12, ..., 30
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, 10 + static_cast<Key>(i) * 2);
  }
}

TEST(BTreeTest, ScanHonorsLimit) {
  BTree tree = MakeTree(5);
  for (Key k = 0; k < 100; ++k) tree.Insert(k, k);
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(tree.Scan(0, 99, 7, &out), 7u);
  EXPECT_EQ(out.size(), 7u);
}

TEST(BTreeTest, TreeStatsReportShape) {
  BTree tree = MakeTree(13);
  for (Key k = 0; k < 5000; ++k) tree.Insert(k * 7919 % 100003, k);
  TreeShapeStats stats = CollectTreeStats(tree);
  EXPECT_EQ(stats.height, tree.height());
  EXPECT_EQ(stats.num_keys, tree.size());
  EXPECT_GT(stats.leaf_utilization, 0.5);
  EXPECT_LE(stats.leaf_utilization, 1.0);
  EXPECT_GE(stats.root_fanout, 2.0);
  uint64_t leaves = stats.levels[1].nodes;
  EXPECT_GT(leaves, stats.levels[2].nodes);
}

TEST(BTreeTest, RandomInsertLeafUtilizationNearLn2) {
  // Johnson & Shasha [9]: random inserts settle near ln 2 = .693 occupancy.
  BTree tree = MakeTree(13);
  for (Key k = 0; k < 40000; ++k) {
    tree.Insert((k * 2654435761u) % 1000000007ull, k);
  }
  TreeShapeStats stats = CollectTreeStats(tree);
  EXPECT_NEAR(stats.leaf_utilization, 0.69, 0.05);
}

TEST(BTreeTest, FineGrainedPrimitivesDriveASplit) {
  BTree tree = MakeTree(5);
  for (Key k = 0; k < 5; ++k) tree.Insert(k, k);  // root leaf now full
  EXPECT_TRUE(tree.IsFull(tree.root()));
  tree.LeafInsert(tree.root(), 5, 5);  // allowed one-entry overflow
  EXPECT_EQ(tree.node(tree.root()).size(), 6u);
  tree.SplitRootInPlace();
  EXPECT_EQ(tree.height(), 2);
  auto result = ValidateTree(tree);
  EXPECT_TRUE(result) << result.error;
  for (Key k = 0; k <= 5; ++k) EXPECT_TRUE(tree.Search(k).has_value());
}

TEST(BTreeTest, InsertSplitEntryToleratesDelayedOrder) {
  // Two successive half-splits posted to the parent in reverse order must
  // still produce a consistent parent (the Link-type delayed-update case).
  BTree tree = MakeTree(4);
  for (Key k = 0; k < 40; ++k) tree.Insert(k, k);
  EXPECT_TRUE(ValidateTree(tree));
}

TEST(NodeStoreTest, AllocateFreeRecycles) {
  NodeStore store;
  NodeId a = store.Allocate(1);
  NodeId b = store.Allocate(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(store.live_count(), 2u);
  store.Free(a);
  EXPECT_FALSE(store.IsLive(a));
  EXPECT_EQ(store.live_count(), 1u);
  NodeId c = store.Allocate(3);
  EXPECT_EQ(c, a);  // slot recycled
  EXPECT_EQ(store.Get(c).level, 3);
  EXPECT_EQ(store.total_allocated(), 3u);
  EXPECT_EQ(store.total_freed(), 1u);
}

}  // namespace
}  // namespace cbtree
