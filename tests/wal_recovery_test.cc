// Crash-recovery scan: round-trips through ShardLog, torn-tail truncation,
// the hard-failure taxonomy (corrupt header, wrong shard, LSN gaps), and the
// full tree integration — log under each retention policy, recover into a
// fresh tree, and verify state equality plus CheckInvariants.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "ctree/ctree.h"
#include "stats/rng.h"
#include "wal/log_writer.h"
#include "wal/recovery.h"
#include "wal/wal_format.h"

namespace cbtree {
namespace wal {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/cbtree_wal_rec_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path_ + "'";
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "TempDir cleanup failed: %s\n", path_.c_str());
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string FirstSegmentPath(const std::string& dir) {
  return dir + "/" + SegmentFileName(1);
}

/// Appends raw bytes to a file (simulating a torn write after a crash).
void AppendBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Flips one byte at `offset` in `path`.
void FlipByte(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x20, f);
  std::fclose(f);
}

long FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<long>(st.st_size);
}

/// Writes `count` records through a real ShardLog and closes it, leaving a
/// clean on-disk log whose record i is insert(key=i+1, value=2*(i+1)).
void WriteCleanLog(const std::string& dir, int count,
                   uint64_t segment_bytes = 64ull << 20) {
  WalOptions options;
  options.dir = dir;
  options.shard = 0;
  options.fsync = FsyncMode::kOff;
  options.group_commit_us = 0;
  options.segment_bytes = segment_bytes;
  std::string error;
  auto log = ShardLog::Open(options, &error);
  ASSERT_NE(log, nullptr) << error;
  for (int i = 1; i <= count; ++i) {
    log->AppendInsert(static_cast<Key>(i), static_cast<Value>(2 * i));
  }
  log->Close();
}

TEST(RecoveryTest, MissingDirectoryRecoversEmpty) {
  TempDir tmp;
  RecoveryResult result = RecoverShard(tmp.path() + "/nonexistent", 0,
                                       [](const WalRecord&) { FAIL(); });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.records, 0u);
  EXPECT_EQ(result.segments, 0u);
  EXPECT_EQ(result.max_lsn, 0u);
}

TEST(RecoveryTest, RoundTripReplaysInLsnOrder) {
  TempDir tmp;
  WriteCleanLog(tmp.path(), 200);
  uint64_t expected_lsn = 1;
  RecoveryResult result =
      RecoverShard(tmp.path(), 0, [&](const WalRecord& record) {
        EXPECT_EQ(record.lsn, expected_lsn++);
        EXPECT_EQ(record.type, RecordType::kInsert);
        EXPECT_EQ(record.key, static_cast<Key>(record.lsn));
        EXPECT_EQ(record.value, static_cast<Value>(2 * record.lsn));
      });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.records, 200u);
  EXPECT_EQ(result.max_lsn, 200u);
  EXPECT_EQ(result.truncated_bytes, 0u);
}

TEST(RecoveryTest, MultiSegmentLogRecoversAcrossRotations) {
  TempDir tmp;
  // ~6 records per segment: 100 records spread over many files.
  WriteCleanLog(tmp.path(), 100, 6 * kRecordFrameSize);
  uint64_t count = 0;
  RecoveryResult result = RecoverShard(
      tmp.path(), 0, [&](const WalRecord&) { ++count; });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.records, 100u);
  EXPECT_EQ(count, 100u);
  EXPECT_GT(result.segments, 5u);
}

TEST(RecoveryTest, TornTailIsTruncatedAndRecoverySucceeds) {
  TempDir tmp;
  WriteCleanLog(tmp.path(), 10);
  const std::string segment = FirstSegmentPath(tmp.path());
  const long clean_size = FileSize(segment);
  ASSERT_GT(clean_size, 0);
  // Simulate a crash mid-append: half a record of valid-looking bytes.
  WalRecord torn{RecordType::kInsert, 11, 999, 999};
  std::string tail;
  AppendRecord(torn, &tail);
  tail.resize(kRecordFrameSize / 2);
  AppendBytes(segment, tail);

  uint64_t count = 0;
  RecoveryResult result =
      RecoverShard(tmp.path(), 0, [&](const WalRecord&) { ++count; });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.records, 10u);
  EXPECT_EQ(count, 10u);
  EXPECT_EQ(result.truncated_bytes, tail.size());
  // The file was repaired in place: the torn bytes are gone, so a second
  // recovery is clean and a new writer appends to a valid tail.
  EXPECT_EQ(FileSize(segment), clean_size);
  RecoveryResult again =
      RecoverShard(tmp.path(), 0, [](const WalRecord&) {});
  EXPECT_TRUE(again.ok);
  EXPECT_EQ(again.truncated_bytes, 0u);
}

TEST(RecoveryTest, CorruptRecordTruncatesFromThatPoint) {
  TempDir tmp;
  WriteCleanLog(tmp.path(), 10);
  const std::string segment = FirstSegmentPath(tmp.path());
  // Flip a payload byte of record 6 (frames start after the header).
  const long offset = static_cast<long>(kSegmentHeaderSize) +
                      5 * static_cast<long>(kRecordFrameSize) + 12;
  FlipByte(segment, offset);
  uint64_t count = 0;
  RecoveryResult result =
      RecoverShard(tmp.path(), 0, [&](const WalRecord&) { ++count; });
  // Only the prefix before the damage survives; the rest was never acked
  // with a valid CRC so dropping it is sound.
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.records, 5u);
  EXPECT_EQ(count, 5u);
  EXPECT_EQ(result.max_lsn, 5u);
  EXPECT_GT(result.truncated_bytes, 0u);
}

TEST(RecoveryTest, CorruptHeaderFailsLoudly) {
  TempDir tmp;
  WriteCleanLog(tmp.path(), 5);
  FlipByte(FirstSegmentPath(tmp.path()), 2);  // inside the magic
  RecoveryResult result =
      RecoverShard(tmp.path(), 0, [](const WalRecord&) {});
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(RecoveryTest, WrongShardFailsLoudly) {
  TempDir tmp;
  WriteCleanLog(tmp.path(), 5);
  RecoveryResult result =
      RecoverShard(tmp.path(), 7, [](const WalRecord&) {});
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(RecoveryTest, LsnGapBetweenSegmentsFailsLoudly) {
  TempDir tmp;
  WriteCleanLog(tmp.path(), 20, 6 * kRecordFrameSize);
  // Unlink a middle segment: recovery must refuse to skip committed LSNs.
  RecoveryResult before = RecoverShard(tmp.path(), 0, [](const WalRecord&) {});
  ASSERT_TRUE(before.ok);
  ASSERT_GT(before.segments, 2u);
  // A fresh segment fits 5 records (the header takes 28 of the 198 bytes),
  // so the second segment starts at LSN 6.
  ASSERT_EQ(::unlink((tmp.path() + "/" + SegmentFileName(6)).c_str()), 0);
  RecoveryResult result =
      RecoverShard(tmp.path(), 0, [](const WalRecord&) {});
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(RecoveryTest, SegmentsAfterTornTailAreDropped) {
  TempDir tmp;
  WriteCleanLog(tmp.path(), 20, 6 * kRecordFrameSize);
  // Corrupt a record in the SECOND segment (starts at LSN 6: a fresh
  // segment fits 5 records); the third+ segments hold LSNs after the damage
  // and must be unlinked, not replayed.
  FlipByte(tmp.path() + "/" + SegmentFileName(6),
           static_cast<long>(kSegmentHeaderSize) + 10);
  RecoveryResult result =
      RecoverShard(tmp.path(), 0, [](const WalRecord&) {});
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.records, 5u);
  EXPECT_EQ(result.max_lsn, 5u);
  EXPECT_GT(result.truncated_bytes, 0u);
  // A fresh writer at max_lsn+1 then a re-recovery must be seamless.
  WalOptions options;
  options.dir = tmp.path();
  options.shard = 0;
  options.fsync = FsyncMode::kOff;
  options.group_commit_us = 0;
  options.start_lsn = result.max_lsn + 1;
  std::string error;
  auto log = ShardLog::Open(options, &error);
  ASSERT_NE(log, nullptr) << error;
  log->AppendInsert(1000, 1000);
  log->Close();
  uint64_t max_lsn = 0;
  RecoveryResult after =
      RecoverShard(tmp.path(), 0,
                   [&](const WalRecord& record) { max_lsn = record.lsn; });
  EXPECT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.records, 6u);
  EXPECT_EQ(max_lsn, 6u);
}

/// WalBinding over a real ShardLog, as the server wires it.
class LogBinding : public WalBinding {
 public:
  explicit LogBinding(ShardLog* log) : log_(log) {}
  uint64_t LogInsert(Key key, Value value) override {
    return log_->AppendInsert(key, value);
  }
  uint64_t LogDelete(Key key) override { return log_->AppendDelete(key); }
  void WaitDurable(uint64_t lsn) override { log_->WaitDurable(lsn); }

 private:
  ShardLog* log_;
};

class WalTreeIntegrationTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, RecoveryPolicy>> {
};

TEST_P(WalTreeIntegrationTest, MutationsReplayIntoIdenticalTree) {
  const Algorithm algorithm = std::get<0>(GetParam());
  const RecoveryPolicy retention = std::get<1>(GetParam());
  TempDir tmp;

  WalOptions options;
  options.dir = tmp.path();
  options.shard = 0;
  options.fsync = FsyncMode::kOff;
  options.group_commit_us = 20;
  std::string error;
  auto log = ShardLog::Open(options, &error);
  ASSERT_NE(log, nullptr) << error;
  LogBinding binding(log.get());

  auto tree = MakeConcurrentBTree(algorithm, 8);
  tree->BindWal(&binding, retention);

  // A mixed workload with enough churn to split nodes and delete keys.
  std::map<Key, Value> oracle;
  Rng mix(12345);
  for (int i = 0; i < 3000; ++i) {
    Key key = static_cast<Key>(mix.NextBounded(800) + 1);
    if (mix.NextBounded(4) == 0) {
      tree->Delete(key);
      oracle.erase(key);
    } else {
      Value value = static_cast<Value>(i);
      tree->Insert(key, value);
      oracle[key] = value;
    }
  }
  tree->CheckInvariants();
  log->Close();

  // Replay into a fresh tree and compare against the oracle.
  auto replayed = MakeConcurrentBTree(algorithm, 8);
  RecoveryResult result =
      RecoverShard(tmp.path(), 0, [&](const WalRecord& record) {
        if (record.type == RecordType::kInsert) {
          replayed->Insert(record.key, record.value);
        } else {
          replayed->Delete(record.key);
        }
      });
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.records, 0u);
  replayed->CheckInvariants();
  EXPECT_EQ(replayed->size(), oracle.size());
  for (const auto& [key, value] : oracle) {
    auto found = replayed->Search(key);
    ASSERT_TRUE(found.has_value()) << "lost key " << key;
    EXPECT_EQ(*found, value);
  }
  for (Key key = 1; key <= 800; ++key) {
    if (oracle.count(key) == 0) {
      EXPECT_FALSE(replayed->Search(key).has_value())
          << "resurrected key " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAllPolicies, WalTreeIntegrationTest,
    ::testing::Combine(::testing::Values(Algorithm::kNaiveLockCoupling,
                                         Algorithm::kOptimisticDescent,
                                         Algorithm::kLinkType,
                                         Algorithm::kTwoPhaseLocking,
                                         Algorithm::kOlc),
                       ::testing::Values(RecoveryPolicy::kNone,
                                         RecoveryPolicy::kLeafOnly,
                                         RecoveryPolicy::kNaive)));

}  // namespace
}  // namespace wal
}  // namespace cbtree
