#include <gtest/gtest.h>

#include "btree/validate.h"
#include "workload/workload.h"

namespace cbtree {
namespace {

TEST(KeyPoolTest, AddSampleRemove) {
  KeyPool pool;
  Rng rng(1);
  pool.Add(10);
  pool.Add(20);
  pool.Add(30);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_TRUE(pool.Contains(20));
  Key sampled = pool.Sample(rng);
  EXPECT_TRUE(sampled == 10 || sampled == 20 || sampled == 30);
  pool.Remove(20);
  EXPECT_FALSE(pool.Contains(20));
  EXPECT_EQ(pool.size(), 2u);
  Key removed = pool.SampleAndRemove(rng);
  EXPECT_FALSE(pool.Contains(removed));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(KeyPoolTest, AddDuplicateIsNoop) {
  KeyPool pool;
  pool.Add(5);
  pool.Add(5);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(WorkloadGeneratorTest, MixProportionsRespected) {
  WorkloadGenerator gen({OperationMix{0.3, 0.5, 0.2}, 42, 0.0});
  int counts[3] = {0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    Operation op = gen.Next();
    ++counts[static_cast<int>(op.type)];
  }
  EXPECT_NEAR(counts[0] / double(n), 0.3, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.5, 0.01);
  EXPECT_NEAR(counts[2] / double(n), 0.2, 0.01);
}

TEST(WorkloadGeneratorTest, DeletesTargetLiveKeys) {
  WorkloadGenerator gen({OperationMix{0.0, 0.6, 0.4}, 7, 0.0});
  std::set<Key> live;
  for (int i = 0; i < 20000; ++i) {
    Operation op = gen.Next();
    if (op.type == OpType::kInsert) {
      live.insert(op.key);
    } else if (op.type == OpType::kDelete && !live.empty()) {
      // Every delete must name a key that was inserted and not yet deleted.
      ASSERT_TRUE(live.count(op.key)) << "op " << i;
      live.erase(op.key);
    }
  }
  EXPECT_EQ(gen.pool().size(), live.size());
}

TEST(WorkloadGeneratorTest, Deterministic) {
  WorkloadGenerator a({OperationMix{0.3, 0.5, 0.2}, 5, 0.0});
  WorkloadGenerator b({OperationMix{0.3, 0.5, 0.2}, 5, 0.0});
  for (int i = 0; i < 1000; ++i) {
    Operation oa = a.Next();
    Operation ob = b.Next();
    EXPECT_EQ(oa.type, ob.type);
    EXPECT_EQ(oa.key, ob.key);
  }
}

TEST(BuildTreeTest, ReachesTargetSizeAndValidates) {
  BTree tree(BTree::Options{13, MergePolicy::kAtEmpty});
  std::vector<Key> keys = BuildTree(&tree, 10000, {0.3, 0.5, 0.2}, 11);
  EXPECT_GE(tree.size(), 10000u);
  EXPECT_EQ(keys.size(), tree.size());
  auto result = ValidateTree(tree, {.check_links = false});
  EXPECT_TRUE(result) << result.error;
  // The returned keys are exactly the live contents, in order.
  for (size_t i = 1; i < keys.size(); ++i) EXPECT_LT(keys[i - 1], keys[i]);
  EXPECT_TRUE(tree.Search(keys.front()).has_value());
  EXPECT_TRUE(tree.Search(keys.back()).has_value());
}

TEST(BuildTreeTest, MixedConstructionExercisesDeletes) {
  BTree tree(BTree::Options{13, MergePolicy::kAtEmpty});
  BuildTree(&tree, 5000, {0.3, 0.5, 0.2}, 13);
  EXPECT_GT(tree.restructure_stats().TotalSplits(), 0u);
}

}  // namespace
}  // namespace cbtree
