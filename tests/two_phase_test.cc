// Two-Phase Locking, across all three layers: the analytical model (worst of
// the family, root-bottlenecked), the simulator, and the threaded tree.

#include <gtest/gtest.h>

#include <thread>

#include "core/naive_model.h"
#include "core/two_phase_model.h"
#include "ctree/ctree.h"
#include "sim/simulator.h"

namespace cbtree {
namespace {

ModelParams Paper() { return ModelParams::PaperDefault(); }

TEST(TwoPhaseModelTest, ZeroLoadSearchEqualsSerialTime) {
  TwoPhaseLockingModel model(Paper());
  AnalysisResult result = model.Analyze(1e-9);
  ASSERT_TRUE(result.stable);
  double serial = 0.0;
  for (int i = 1; i <= model.params().height(); ++i) {
    serial += model.params().cost.Se(i);
  }
  EXPECT_NEAR(result.per_search, serial, 1e-3);
}

TEST(TwoPhaseModelTest, ZeroLoadInsertMatchesNaive) {
  // With no contention, holding locks longer costs nothing: 2PL and Naive
  // Lock-coupling do identical serial work.
  TwoPhaseLockingModel two_phase(Paper());
  NaiveLockCouplingModel naive(Paper());
  EXPECT_NEAR(two_phase.Analyze(1e-9).per_insert,
              naive.Analyze(1e-9).per_insert, 1e-3);
}

TEST(TwoPhaseModelTest, StrictlyWorseThanNaiveUnderLoad) {
  TwoPhaseLockingModel two_phase(Paper());
  NaiveLockCouplingModel naive(Paper());
  double max_2pl = two_phase.MaxThroughput();
  double max_naive = naive.MaxThroughput();
  EXPECT_LT(max_2pl, max_naive);
  double lambda = max_2pl * 0.9;
  AnalysisResult r2 = two_phase.Analyze(lambda);
  AnalysisResult rn = naive.Analyze(lambda);
  ASSERT_TRUE(r2.stable);
  ASSERT_TRUE(rn.stable);
  EXPECT_GT(r2.per_insert, rn.per_insert);
  EXPECT_GT(r2.per_search, rn.per_search);
}

TEST(TwoPhaseModelTest, RootIsTheBottleneck) {
  TwoPhaseLockingModel model(Paper());
  double max_rate = model.MaxThroughput();
  AnalysisResult result = model.Analyze(max_rate * 1.05);
  ASSERT_FALSE(result.stable);
  EXPECT_EQ(result.bottleneck_level, model.params().height());
}

TEST(TwoPhaseModelTest, HoldTimesTelescope) {
  TwoPhaseLockingModel model(Paper());
  AnalysisResult result = model.Analyze(model.MaxThroughput() * 0.5);
  ASSERT_TRUE(result.stable);
  // T(S, i) strictly grows with the level: each lock covers all work below.
  for (int i = 2; i <= model.params().height(); ++i) {
    EXPECT_GT(result.levels[i].t_s, result.levels[i - 1].t_s);
    EXPECT_GT(result.levels[i].t_i, result.levels[i - 1].t_i);
  }
}

TEST(TwoPhaseSimTest, CompletesAndMatchesModelAtLowLoad) {
  SimConfig config;
  config.algorithm = Algorithm::kTwoPhaseLocking;
  config.lambda = 0.02;
  config.mix = OperationMix{0.3, 0.5, 0.2};
  config.num_operations = 4000;
  config.warmup_operations = 400;
  config.num_items = 4000;
  config.seed = 1;
  SimResult result = Simulator(config).Run();
  ASSERT_FALSE(result.saturated);
  ModelParams params = ModelParams::ForTree(4000, 13, 5.0, config.mix);
  TwoPhaseLockingModel model(params);
  AnalysisResult analysis = model.Analyze(config.lambda);
  ASSERT_TRUE(analysis.stable);
  EXPECT_NEAR(result.resp_search.mean() / analysis.per_search, 1.0, 0.3);
  EXPECT_NEAR(result.resp_insert.mean() / analysis.per_insert, 1.0, 0.3);
}

TEST(TwoPhaseSimTest, SaturatesBeforeNaive) {
  ModelParams params = ModelParams::ForTree(4000, 13, 5.0,
                                            OperationMix{0.3, 0.5, 0.2});
  TwoPhaseLockingModel model(params);
  double max_rate = model.MaxThroughput();
  SimConfig config;
  config.algorithm = Algorithm::kTwoPhaseLocking;
  config.lambda = max_rate * 4.0;
  config.mix = OperationMix{0.3, 0.5, 0.2};
  config.num_operations = 6000;
  config.warmup_operations = 400;
  config.num_items = 4000;
  config.max_active_ops = 500;
  config.seed = 1;
  SimResult result = Simulator(config).Run();
  EXPECT_TRUE(result.saturated);
}

TEST(TwoPhaseCTreeTest, ConcurrentCorrectness) {
  auto tree = MakeConcurrentBTree(Algorithm::kTwoPhaseLocking, 8);
  EXPECT_EQ(tree->name(), "two-phase-tree");
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      for (Key k = t; k < 6000; k += kThreads) tree->Insert(k, k);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tree->size(), 6000u);
  tree->CheckInvariants();
  for (Key k = 0; k < 6000; k += 17) {
    EXPECT_TRUE(tree->Search(k).has_value()) << k;
  }
}

}  // namespace
}  // namespace cbtree
