// End-to-end simulator behaviour for each algorithm: completion, tree
// integrity under concurrency, determinism, low-load response limits,
// restarts, link crossings, saturation detection, and recovery retention.

#include <gtest/gtest.h>

#include <cmath>

#include "btree/validate.h"
#include "sim/simulator.h"

namespace cbtree {
namespace {

SimConfig SmallConfig(Algorithm algorithm, double lambda) {
  SimConfig config;
  config.algorithm = algorithm;
  config.lambda = lambda;
  config.mix = OperationMix{0.3, 0.5, 0.2};
  config.num_operations = 3000;
  config.warmup_operations = 300;
  config.num_items = 4000;
  config.max_node_size = 13;
  config.disk_cost = 5.0;
  config.seed = 1;
  return config;
}

class SimulatorAlgorithmTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SimulatorAlgorithmTest, CompletesAllOperations) {
  SimConfig config = SmallConfig(GetParam(), 0.02);
  Simulator sim(config);
  SimResult result = sim.Run();
  EXPECT_FALSE(result.saturated);
  EXPECT_EQ(result.completed,
            config.num_operations - config.warmup_operations);
  EXPECT_GT(result.resp_search.count(), 0u);
  EXPECT_GT(result.resp_insert.count(), 0u);
  EXPECT_GT(result.resp_delete.count(), 0u);
  EXPECT_GT(result.duration, 0.0);
}

TEST_P(SimulatorAlgorithmTest, TreeStaysConsistent) {
  SimConfig config = SmallConfig(GetParam(), 0.05);
  Simulator sim(config);
  sim.Run();
  // The tree grew (more inserts than deletes) and is structurally sound.
  EXPECT_GT(sim.tree().size(), config.num_items);
  ValidateOptions options;
  // Merge-at-empty removals invalidate links under the coupling algorithms.
  options.check_links = GetParam() == Algorithm::kLinkType;
  auto result = ValidateTree(sim.tree(), options);
  EXPECT_TRUE(result) << result.error;
}

TEST_P(SimulatorAlgorithmTest, DeterministicPerSeed) {
  SimConfig config = SmallConfig(GetParam(), 0.03);
  config.num_operations = 1000;
  config.warmup_operations = 100;
  SimResult a = Simulator(config).Run();
  SimResult b = Simulator(config).Run();
  EXPECT_DOUBLE_EQ(a.resp_all.mean(), b.resp_all.mean());
  EXPECT_EQ(a.events, b.events);
  config.seed = 99;
  SimResult c = Simulator(config).Run();
  EXPECT_NE(a.resp_all.mean(), c.resp_all.mean());
}

TEST_P(SimulatorAlgorithmTest, LowLoadResponseApproachesSerialTime) {
  SimConfig config = SmallConfig(GetParam(), 0.0005);
  config.num_operations = 2000;
  config.warmup_operations = 200;
  Simulator sim(config);
  SimResult result = sim.Run();
  ASSERT_FALSE(result.saturated);
  // Serial search time: two in-memory levels at 1 plus on-disk levels at D,
  // give or take the exponential sampling noise. h=4 for 4000 items at N=13.
  int h = sim.tree().height();
  double serial = 0.0;
  for (int level = 1; level <= h; ++level) {
    serial += level > h - config.in_memory_levels ? 1.0 : config.disk_cost;
  }
  EXPECT_NEAR(result.resp_search.mean(), serial, serial * 0.15);
}

TEST_P(SimulatorAlgorithmTest, ResponseGrowsWithLoad) {
  SimConfig config = SmallConfig(GetParam(), 0.005);
  SimResult low = Simulator(config).Run();
  config.lambda = 0.08;
  SimResult high = Simulator(config).Run();
  ASSERT_FALSE(low.saturated);
  ASSERT_FALSE(high.saturated);
  EXPECT_GT(high.resp_all.mean(), low.resp_all.mean());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SimulatorAlgorithmTest,
                         ::testing::Values(Algorithm::kNaiveLockCoupling,
                                           Algorithm::kOptimisticDescent,
                                           Algorithm::kLinkType,
                                           Algorithm::kTwoPhaseLocking),
                         [](const auto& info) {
                           std::string name = AlgorithmName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(SimulatorTest, NaiveSaturatesUnderOverload) {
  SimConfig config = SmallConfig(Algorithm::kNaiveLockCoupling, 2.0);
  config.max_active_ops = 2000;
  SimResult result = Simulator(config).Run();
  EXPECT_TRUE(result.saturated);
}

TEST(SimulatorTest, LinkTypeSurvivesNaiveKillingLoad) {
  // Figure 12's point: at rates far beyond Naive's saturation the Link-type
  // algorithm still clears the workload.
  SimConfig config = SmallConfig(Algorithm::kLinkType, 2.0);
  config.max_active_ops = 2000;
  SimResult result = Simulator(config).Run();
  EXPECT_FALSE(result.saturated);
  EXPECT_NEAR(result.throughput, 2.0, 0.4);
}

TEST(SimulatorTest, OptimisticRecordsRestarts) {
  SimConfig config = SmallConfig(Algorithm::kOptimisticDescent, 0.05);
  config.num_operations = 8000;
  config.warmup_operations = 500;
  SimResult result = Simulator(config).Run();
  ASSERT_FALSE(result.saturated);
  // Restarts happen at roughly q_i * Pr[F(1)] per operation.
  EXPECT_GT(result.restarts, 0u);
  double measured = result.restarts / 7500.0;
  EXPECT_LT(measured, 0.15);
}

TEST(SimulatorTest, LinkTypeCrossingsAreRare) {
  // Figure 9: link crossings are negligible.
  SimConfig config = SmallConfig(Algorithm::kLinkType, 0.3);
  config.num_operations = 6000;
  config.warmup_operations = 500;
  SimResult result = Simulator(config).Run();
  ASSERT_FALSE(result.saturated);
  EXPECT_LT(result.link_crossings,
            (config.num_operations - config.warmup_operations) / 20);
}

TEST(SimulatorTest, RootUtilizationGrowsWithLoad) {
  SimConfig config = SmallConfig(Algorithm::kNaiveLockCoupling, 0.01);
  SimResult low = Simulator(config).Run();
  config.lambda = 0.1;
  SimResult high = Simulator(config).Run();
  ASSERT_FALSE(high.saturated);
  EXPECT_GT(high.root_writer_utilization, low.root_writer_utilization);
  EXPECT_GT(high.root_writer_utilization, 0.0);
  EXPECT_LE(high.root_writer_utilization, 1.0);
}

TEST(SimulatorTest, ThroughputMatchesArrivalRateWhenStable) {
  SimConfig config = SmallConfig(Algorithm::kOptimisticDescent, 0.05);
  config.num_operations = 6000;
  SimResult result = Simulator(config).Run();
  ASSERT_FALSE(result.saturated);
  EXPECT_NEAR(result.throughput, 0.05, 0.01);
}

TEST(SimulatorTest, RecoveryRetentionSlowsOperations) {
  SimConfig none = SmallConfig(Algorithm::kOptimisticDescent, 0.03);
  none.num_operations = 4000;
  SimConfig leaf = none;
  leaf.recovery = {RecoveryPolicy::kLeafOnly, 50.0};
  SimConfig naive = none;
  naive.recovery = {RecoveryPolicy::kNaive, 50.0};
  SimResult r_none = Simulator(none).Run();
  SimResult r_leaf = Simulator(leaf).Run();
  SimResult r_naive = Simulator(naive).Run();
  ASSERT_FALSE(r_none.saturated);
  ASSERT_FALSE(r_leaf.saturated);
  ASSERT_FALSE(r_naive.saturated);
  EXPECT_GT(r_leaf.resp_all.mean(), r_none.resp_all.mean());
  EXPECT_GE(r_naive.resp_all.mean(), r_leaf.resp_all.mean());
}

TEST(SimulatorTest, ZipfSkewIncreasesLeafContention) {
  SimConfig uniform = SmallConfig(Algorithm::kLinkType, 0.3);
  uniform.num_operations = 4000;
  SimConfig skewed = uniform;
  skewed.zipf_skew = 0.9;
  SimResult r_uniform = Simulator(uniform).Run();
  SimResult r_skewed = Simulator(skewed).Run();
  ASSERT_FALSE(r_uniform.saturated);
  ASSERT_FALSE(r_skewed.saturated);
  // Hot keys concentrate W locks on few leaves; waits cannot shrink.
  EXPECT_GE(r_skewed.resp_all.mean(), r_uniform.resp_all.mean() * 0.95);
}

TEST(SimulatorTest, PureSearchWorkloadRuns) {
  // q_s = 1: the construction phase must still grow the tree (pure
  // inserts), and the concurrent phase sees no W locks at all.
  SimConfig config = SmallConfig(Algorithm::kNaiveLockCoupling, 0.2);
  config.mix = OperationMix{1.0, 0.0, 0.0};
  config.num_operations = 2000;
  config.warmup_operations = 200;
  Simulator sim(config);
  SimResult result = sim.Run();
  EXPECT_FALSE(result.saturated);
  EXPECT_EQ(result.resp_insert.count(), 0u);
  EXPECT_EQ(result.root_writer_utilization, 0.0);
  EXPECT_EQ(sim.tree().size(), config.num_items);
}

TEST(SimulatorTest, ResponsePercentilesAreOrderedAndBracketMean) {
  SimConfig config = SmallConfig(Algorithm::kOptimisticDescent, 0.05);
  config.num_operations = 6000;
  SimResult result = Simulator(config).Run();
  ASSERT_FALSE(result.saturated);
  EXPECT_GT(result.resp_p50, 0.0);
  EXPECT_LE(result.resp_p50, result.resp_p95);
  EXPECT_LE(result.resp_p95, result.resp_p99);
  // Exponential-ish service: the mean sits between the median and p99.
  EXPECT_LT(result.resp_p50, result.resp_all.mean() * 1.2);
  EXPECT_GT(result.resp_p99, result.resp_all.mean());
}

TEST(SimulatorTest, RestructuringHappensUnderConcurrency) {
  SimConfig config = SmallConfig(Algorithm::kLinkType, 0.2);
  config.num_operations = 8000;
  Simulator sim(config);
  SimResult result = sim.Run();
  ASSERT_FALSE(result.saturated);
  EXPECT_GT(result.restructures.TotalSplits(), 0u);
  EXPECT_EQ(result.final_shape.num_keys, sim.tree().size());
}

}  // namespace
}  // namespace cbtree
