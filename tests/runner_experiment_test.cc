// The runner's multi-seed fan-out: merging per-seed simulator statistics in
// job-index order must reproduce the serial fold exactly — same Adds in the
// same order, so bit-identical means and variances for any jobs count.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "runner/experiment.h"
#include "sim/simulator.h"
#include "stats/accumulator.h"

namespace cbtree {
namespace {

SimConfig MakeConfig(Algorithm algorithm, double lambda, uint64_t seed) {
  SimConfig config;
  config.algorithm = algorithm;
  config.lambda = lambda;
  config.mix = OperationMix{0.3, 0.5, 0.2};
  config.num_operations = 2000;
  config.warmup_operations = 200;
  config.num_items = 4000;
  config.max_node_size = 13;
  config.disk_cost = 5.0;
  config.seed = seed;
  return config;
}

std::vector<SimConfig> SeedConfigs(Algorithm algorithm, double lambda,
                                   int seeds) {
  std::vector<SimConfig> configs;
  for (int s = 1; s <= seeds; ++s) {
    configs.push_back(MakeConfig(algorithm, lambda, s));
  }
  return configs;
}

TEST(RunnerMergeTest, ParallelMergeEqualsSerialFoldExactly) {
  constexpr int kSeeds = 5;
  std::vector<SimConfig> configs =
      SeedConfigs(Algorithm::kLinkType, 0.2, kSeeds);

  // The serial fold, exactly as the harnesses did it before the runner:
  // each seed contributes its mean, in seed order.
  Accumulator search, insert, del, root;
  for (const SimConfig& config : configs) {
    SimResult result = Simulator(config).Run();
    ASSERT_FALSE(result.saturated);
    search.Add(result.resp_search.mean());
    insert.Add(result.resp_insert.mean());
    del.Add(result.resp_delete.mean());
    root.Add(result.root_writer_utilization);
  }

  runner::SimGridRun run = runner::RunSimGrid({configs}, /*jobs=*/4);
  ASSERT_EQ(run.points.size(), 1u);
  const runner::SimPoint& point = run.points[0];
  ASSERT_TRUE(point.ok);

  // Bit-identical, not approximately equal: same values, same fold order.
  EXPECT_EQ(point.search.count(), static_cast<size_t>(kSeeds));
  EXPECT_EQ(point.search.mean(), search.mean());
  EXPECT_EQ(point.search.variance(), search.variance());
  EXPECT_EQ(point.insert.mean(), insert.mean());
  EXPECT_EQ(point.insert.variance(), insert.variance());
  EXPECT_EQ(point.del.mean(), del.mean());
  EXPECT_EQ(point.del.variance(), del.variance());
  EXPECT_EQ(point.root_utilization.mean(), root.mean());
  EXPECT_EQ(point.root_utilization.variance(), root.variance());
}

TEST(RunnerMergeTest, GridIdenticalForOneAndEightJobs) {
  std::vector<std::vector<SimConfig>> grid;
  for (double lambda : {0.1, 0.2, 0.3}) {
    grid.push_back(SeedConfigs(Algorithm::kOptimisticDescent, lambda, 3));
  }
  runner::SimGridRun serial = runner::RunSimGrid(grid, 1);
  runner::SimGridRun parallel = runner::RunSimGrid(grid, 8);
  ASSERT_EQ(serial.points.size(), 3u);
  ASSERT_EQ(parallel.points.size(), 3u);
  for (size_t p = 0; p < serial.points.size(); ++p) {
    const runner::SimPoint& a = serial.points[p];
    const runner::SimPoint& b = parallel.points[p];
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.search.mean(), b.search.mean());
    EXPECT_EQ(a.search.variance(), b.search.variance());
    EXPECT_EQ(a.insert.mean(), b.insert.mean());
    EXPECT_EQ(a.insert.variance(), b.insert.variance());
    EXPECT_EQ(a.all.mean(), b.all.mean());
    EXPECT_EQ(a.restarts_per_op.mean(), b.restarts_per_op.mean());
  }
}

TEST(RunnerMergeTest, SaturatedSeedPoisonsThePoint) {
  std::vector<runner::SeedStats> seeds(3);
  seeds[0].search = 1.0;
  seeds[1].saturated = true;
  seeds[2].search = 3.0;
  runner::SimPoint point = runner::MergeSeedStats(seeds);
  EXPECT_FALSE(point.ok);
  // The serial harnesses reported nothing for a saturated point; the merge
  // must not leak partial statistics either.
  EXPECT_EQ(point.search.count(), 0u);
}

TEST(RunnerMergeTest, ReduceSeedExtractsPerOpRates) {
  SimResult result;
  result.resp_search.Add(2.0);
  result.resp_insert.Add(4.0);
  result.resp_delete.Add(6.0);
  result.resp_all.Add(4.0);
  result.root_writer_utilization = 0.25;
  result.completed = 100;
  result.link_crossings = 10;
  result.restarts = 5;
  runner::SeedStats stats = runner::ReduceSeed(result);
  EXPECT_FALSE(stats.saturated);
  EXPECT_TRUE(stats.has_per_op);
  EXPECT_EQ(stats.search, 2.0);
  EXPECT_EQ(stats.crossings_per_op, 0.1);
  EXPECT_EQ(stats.restarts_per_op, 0.05);

  SimResult saturated;
  saturated.saturated = true;
  EXPECT_TRUE(runner::ReduceSeed(saturated).saturated);
}

TEST(RunnerMergeTest, SimPointJsonIsStableAcrossJobs) {
  std::vector<SimConfig> configs =
      SeedConfigs(Algorithm::kNaiveLockCoupling, 0.05, 3);
  runner::SimGridRun serial = runner::RunSimGrid({configs}, 1);
  runner::SimGridRun parallel = runner::RunSimGrid({configs}, 8);
  runner::SimRunInfo info;
  info.algorithm = "naive";
  info.lambda = 0.05;
  std::ostringstream a, b;
  runner::WriteSimPointJson(a, info, serial.points[0],
                            /*include_timing=*/false);
  runner::WriteSimPointJson(b, info, parallel.points[0],
                            /*include_timing=*/false);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"kind\":\"simulate\""), std::string::npos);
}

}  // namespace
}  // namespace cbtree
