// Parameterized property sweeps over the analytical models: for a grid of
// (algorithm, node size, disk cost, mix) configurations, invariants that
// must hold at every operating point regardless of parameters.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/analyzer.h"

namespace cbtree {
namespace {

struct SweepParam {
  Algorithm algorithm;
  int node_size;
  double disk_cost;
  double q_s;  // updates split 5:2 insert:delete
};

OperationMix MixFor(double q_s) {
  double updates = 1.0 - q_s;
  return OperationMix{q_s, updates * 5.0 / 7.0, updates * 2.0 / 7.0};
}

class ModelSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  std::unique_ptr<Analyzer> Make() const {
    const SweepParam& p = GetParam();
    return MakeAnalyzer(p.algorithm,
                        ModelParams::ForTree(40000, p.node_size, p.disk_cost,
                                             MixFor(p.q_s)));
  }
};

TEST_P(ModelSweepTest, ZeroLoadEqualsSerialTimes) {
  auto analyzer = Make();
  AnalysisResult result = analyzer->Analyze(1e-10);
  ASSERT_TRUE(result.stable);
  const ModelParams& params = analyzer->params();
  double serial_search = 0.0;
  for (int i = 1; i <= params.height(); ++i) {
    serial_search += params.cost.Se(i);
  }
  EXPECT_NEAR(result.per_search, serial_search, serial_search * 1e-6);
  EXPECT_GT(result.per_insert, 0.0);
  EXPECT_GE(result.per_insert, result.per_delete - 1e-9)
      << "inserts pay at least the delete cost plus expected splits";
}

TEST_P(ModelSweepTest, InvariantsHoldAcrossTheStableRange) {
  auto analyzer = Make();
  double max_rate = analyzer->MaxThroughput(/*cap=*/1e6);
  double cap = std::isfinite(max_rate) ? max_rate : 1e3;
  double last_search = 0.0, last_insert = 0.0;
  for (int i = 1; i <= 6; ++i) {
    double lambda = cap * 0.9 * i / 6;
    AnalysisResult result = analyzer->Analyze(lambda);
    ASSERT_TRUE(result.stable) << "lambda " << lambda;
    // Response monotone in lambda.
    EXPECT_GE(result.per_search, last_search - 1e-9) << "lambda " << lambda;
    EXPECT_GE(result.per_insert, last_insert - 1e-9) << "lambda " << lambda;
    last_search = result.per_search;
    last_insert = result.per_insert;
    for (int level = 1; level <= analyzer->params().height(); ++level) {
      const LevelAnalysis& la = result.levels[level];
      EXPECT_GE(la.rho_w, 0.0);
      EXPECT_LT(la.rho_w, 1.0);
      EXPECT_GE(la.wait_r, 0.0);
      // W lock waits dominate R lock waits (they additionally wait out the
      // reader batch ahead).
      EXPECT_GE(la.wait_w, la.wait_r - 1e-12);
      EXPECT_GE(la.lambda_r, 0.0);
      EXPECT_GE(la.lambda_w, 0.0);
    }
    // The mean response is the mix-weighted combination.
    const OperationMix& mix = analyzer->params().mix;
    EXPECT_NEAR(result.mean_response,
                mix.q_s * result.per_search + mix.q_i * result.per_insert +
                    mix.q_d * result.per_delete,
                1e-9 * result.mean_response);
  }
}

TEST_P(ModelSweepTest, JustPastSaturationIsUnstable) {
  auto analyzer = Make();
  double max_rate = analyzer->MaxThroughput(/*cap=*/1e6);
  if (!std::isfinite(max_rate)) GTEST_SKIP() << "no finite saturation";
  AnalysisResult result = analyzer->Analyze(max_rate * 1.02);
  EXPECT_FALSE(result.stable);
  EXPECT_GE(result.bottleneck_level, 1);
  EXPECT_LE(result.bottleneck_level, analyzer->params().height());
  EXPECT_TRUE(std::isinf(result.per_insert));
}

std::vector<SweepParam> MakeGrid() {
  std::vector<SweepParam> grid;
  for (Algorithm algorithm :
       {Algorithm::kNaiveLockCoupling, Algorithm::kOptimisticDescent,
        Algorithm::kLinkType, Algorithm::kTwoPhaseLocking}) {
    for (int node_size : {7, 13, 59}) {
      for (double disk_cost : {1.0, 10.0}) {
        for (double q_s : {0.1, 0.3, 0.7}) {
          grid.push_back({algorithm, node_size, disk_cost, q_s});
        }
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelSweepTest, ::testing::ValuesIn(MakeGrid()),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      const SweepParam& p = info.param;
      std::string name = AlgorithmName(p.algorithm);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_N" + std::to_string(p.node_size) + "_D" +
             std::to_string(static_cast<int>(p.disk_cost)) + "_qs" +
             std::to_string(static_cast<int>(p.q_s * 100));
    });

}  // namespace
}  // namespace cbtree
