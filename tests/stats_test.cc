#include <gtest/gtest.h>

#include <cmath>

#include "stats/accumulator.h"
#include "stats/distributions.h"
#include "stats/rng.h"
#include "stats/solver.h"

namespace cbtree {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextBoundedIsUnbiasedEnough) {
  Rng rng(11);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / static_cast<int>(bound), 700);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng b = a.Fork();
  // The parent and the fork should diverge immediately.
  EXPECT_NE(a.Next(), b.Next());
}

TEST(DistributionsTest, ExponentialMeanMatches) {
  Rng rng(3);
  const double mean = 4.0;
  double total = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) total += SampleExponential(rng, mean);
  EXPECT_NEAR(total / n, mean, 0.05);
}

TEST(DistributionsTest, ExponentialZeroMeanDegenerates) {
  Rng rng(3);
  EXPECT_EQ(SampleExponential(rng, 0.0), 0.0);
}

TEST(DistributionsTest, DiscreteFollowsWeights) {
  Rng rng(9);
  std::vector<double> weights = {0.3, 0.5, 0.2};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[SampleDiscrete(rng, weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.2, 0.01);
}

TEST(DistributionsTest, ZipfSkewsTowardsLowRanks) {
  Rng rng(13);
  ZipfGenerator zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(DistributionsTest, PoissonProcessRateMatches) {
  PoissonProcess process(2.0, 17);
  double last = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) last = process.NextArrival();
  // n arrivals at rate 2 should span about n/2 time units.
  EXPECT_NEAR(last, n / 2.0, n * 0.02);
}

TEST(AccumulatorTest, MeanVarianceMinMax) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(acc.min(), 1.0);
  EXPECT_EQ(acc.max(), 4.0);
}

TEST(AccumulatorTest, MergeEqualsBulk) {
  Accumulator a, b, bulk;
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    (i % 2 ? a : b).Add(v);
    bulk.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  EXPECT_NEAR(a.mean(), bulk.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), bulk.variance(), 1e-9);
}

TEST(TimeWeightedTest, AveragesPiecewiseConstantSignal) {
  TimeWeightedAccumulator acc(0.0);
  acc.Update(0.0, 1.0);   // value 1 on [0, 2)
  acc.Update(2.0, 3.0);   // value 3 on [2, 4)
  EXPECT_DOUBLE_EQ(acc.Average(4.0), 2.0);
}

TEST(HistogramTest, QuantilesApproximate) {
  Histogram hist(10.0, 100);
  for (int i = 0; i < 1000; ++i) hist.Add(i % 10 + 0.5);
  EXPECT_NEAR(hist.Quantile(0.5), 5.0, 0.6);
  EXPECT_NEAR(hist.Quantile(0.95), 9.5, 0.6);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram configured(10.0, 10);
  EXPECT_DOUBLE_EQ(configured.Quantile(0.5), 0.0);
  Histogram unconfigured;
  EXPECT_DOUBLE_EQ(unconfigured.Quantile(0.99), 0.0);
}

TEST(HistogramTest, OverflowQuantileInterpolatesToMaxSeen) {
  Histogram hist(10.0, 10);
  hist.Add(5.0);
  hist.Add(50.0);
  hist.Add(100.0);
  // Overflow quantiles live in [limit, max seen]; the extreme quantile
  // reaches (nearly) the max, never beyond it.
  double q999 = hist.Quantile(0.999);
  EXPECT_GE(q999, 10.0);
  EXPECT_LE(q999, 100.0);
  EXPECT_NEAR(q999, 100.0, 1.0);
  double q50 = hist.Quantile(0.5);
  EXPECT_GE(q50, 0.0);
  EXPECT_LE(q50, 100.0);
}

TEST(HistogramTest, MergePoolsCounts) {
  Histogram a(10.0, 10), b(10.0, 10), pooled(10.0, 10);
  for (int i = 0; i < 50; ++i) {
    double va = (i % 10) + 0.5, vb = (i % 5) + 0.25;
    a.Add(va);
    b.Add(vb);
    pooled.Add(va);
    pooled.Add(vb);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_EQ(a.buckets(), pooled.buckets());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), pooled.Quantile(q)) << q;
  }
}

TEST(HistogramTest, MergeIntoUnconfiguredAdoptsShape) {
  Histogram a(10.0, 10);
  a.Add(3.0);
  a.Add(7.0);
  Histogram empty;
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), a.Quantile(0.5));
  // Merging an empty/unconfigured operand is a no-op.
  a.Merge(Histogram());
  EXPECT_EQ(a.count(), 2u);
}

TEST(TimeWeightedTest, MergePoolsDisjointWindows) {
  // Seed 1: value 2 over [0, 10); seed 2: value 6 over [0, 5).
  TimeWeightedAccumulator a(0.0), b(0.0);
  a.Update(0.0, 2.0);
  b.Update(0.0, 6.0);
  TimeWeightedAccumulator pooled;
  pooled.Merge(a, 10.0);
  pooled.Merge(b, 5.0);
  // (2*10 + 6*5) / (10 + 5) = 50/15.
  EXPECT_NEAR(pooled.Average(0.0), 50.0 / 15.0, 1e-12);
}

TEST(TimeWeightedTest, MergeIntoLiveAccumulator) {
  TimeWeightedAccumulator live(0.0);
  live.Update(0.0, 4.0);  // value 4 over [0, 2]
  TimeWeightedAccumulator other(0.0);
  other.Update(0.0, 1.0);  // value 1 over [0, 6]
  live.Merge(other, 6.0);
  // (4*2 + 1*6) / (2 + 6) = 14/8.
  EXPECT_NEAR(live.Average(2.0), 14.0 / 8.0, 1e-12);
  // Without merges Average is unchanged behavior.
  TimeWeightedAccumulator plain(0.0);
  plain.Update(0.0, 4.0);
  EXPECT_DOUBLE_EQ(plain.Average(2.0), 4.0);
}

TEST(TimeWeightedTest, MergeIgnoresEmptyWindow) {
  TimeWeightedAccumulator acc(0.0);
  acc.Update(0.0, 3.0);
  TimeWeightedAccumulator idle(5.0);
  acc.Merge(idle, 5.0);  // zero elapsed: no-op
  EXPECT_DOUBLE_EQ(acc.Average(2.0), 3.0);
}

TEST(SolverTest, BisectFindsSqrt2) {
  auto f = [](double x) { return x * x - 2.0; };
  auto root = Bisect(f, 0.0, 2.0);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, std::sqrt(2.0), 1e-10);
}

TEST(SolverTest, BisectRejectsBadBracket) {
  auto f = [](double x) { return x * x + 1.0; };
  EXPECT_FALSE(Bisect(f, -1.0, 1.0).has_value());
}

TEST(SolverTest, FirstRootPicksSmallest) {
  // Roots at 1 and 3.
  auto f = [](double x) { return (x - 1.0) * (x - 3.0); };
  auto root = FirstRoot(f, 0.0, 4.0, 64);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, 1.0, 1e-9);
}

TEST(SolverTest, FixedPointConverges) {
  auto g = [](double x) { return std::cos(x); };
  auto fp = FixedPoint(g, 0.5, 1e-12);
  ASSERT_TRUE(fp.has_value());
  EXPECT_NEAR(*fp, 0.7390851332151607, 1e-8);
}

}  // namespace
}  // namespace cbtree
