#include <gtest/gtest.h>

#include <cmath>

#include "stats/accumulator.h"
#include "stats/distributions.h"
#include "stats/rng.h"
#include "stats/solver.h"

namespace cbtree {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextBoundedIsUnbiasedEnough) {
  Rng rng(11);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / static_cast<int>(bound), 700);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng b = a.Fork();
  // The parent and the fork should diverge immediately.
  EXPECT_NE(a.Next(), b.Next());
}

TEST(DistributionsTest, ExponentialMeanMatches) {
  Rng rng(3);
  const double mean = 4.0;
  double total = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) total += SampleExponential(rng, mean);
  EXPECT_NEAR(total / n, mean, 0.05);
}

TEST(DistributionsTest, ExponentialZeroMeanDegenerates) {
  Rng rng(3);
  EXPECT_EQ(SampleExponential(rng, 0.0), 0.0);
}

TEST(DistributionsTest, DiscreteFollowsWeights) {
  Rng rng(9);
  std::vector<double> weights = {0.3, 0.5, 0.2};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[SampleDiscrete(rng, weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.2, 0.01);
}

TEST(DistributionsTest, ZipfSkewsTowardsLowRanks) {
  Rng rng(13);
  ZipfGenerator zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(DistributionsTest, PoissonProcessRateMatches) {
  PoissonProcess process(2.0, 17);
  double last = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) last = process.NextArrival();
  // n arrivals at rate 2 should span about n/2 time units.
  EXPECT_NEAR(last, n / 2.0, n * 0.02);
}

TEST(AccumulatorTest, MeanVarianceMinMax) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(acc.min(), 1.0);
  EXPECT_EQ(acc.max(), 4.0);
}

TEST(AccumulatorTest, MergeEqualsBulk) {
  Accumulator a, b, bulk;
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    (i % 2 ? a : b).Add(v);
    bulk.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  EXPECT_NEAR(a.mean(), bulk.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), bulk.variance(), 1e-9);
}

TEST(TimeWeightedTest, AveragesPiecewiseConstantSignal) {
  TimeWeightedAccumulator acc(0.0);
  acc.Update(0.0, 1.0);   // value 1 on [0, 2)
  acc.Update(2.0, 3.0);   // value 3 on [2, 4)
  EXPECT_DOUBLE_EQ(acc.Average(4.0), 2.0);
}

TEST(HistogramTest, QuantilesApproximate) {
  Histogram hist(10.0, 100);
  for (int i = 0; i < 1000; ++i) hist.Add(i % 10 + 0.5);
  EXPECT_NEAR(hist.Quantile(0.5), 5.0, 0.6);
  EXPECT_NEAR(hist.Quantile(0.95), 9.5, 0.6);
}

TEST(SolverTest, BisectFindsSqrt2) {
  auto f = [](double x) { return x * x - 2.0; };
  auto root = Bisect(f, 0.0, 2.0);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, std::sqrt(2.0), 1e-10);
}

TEST(SolverTest, BisectRejectsBadBracket) {
  auto f = [](double x) { return x * x + 1.0; };
  EXPECT_FALSE(Bisect(f, -1.0, 1.0).has_value());
}

TEST(SolverTest, FirstRootPicksSmallest) {
  // Roots at 1 and 3.
  auto f = [](double x) { return (x - 1.0) * (x - 3.0); };
  auto root = FirstRoot(f, 0.0, 4.0, 64);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, 1.0, 1e-9);
}

TEST(SolverTest, FixedPointConverges) {
  auto g = [](double x) { return std::cos(x); };
  auto fp = FixedPoint(g, 0.5, 1e-12);
  ASSERT_TRUE(fp.has_value());
  EXPECT_NEAR(*fp, 0.7390851332151607, 1e-8);
}

}  // namespace
}  // namespace cbtree
