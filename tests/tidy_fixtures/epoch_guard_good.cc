// Negative fixture for cbtree-epoch-guard: no line here may be diagnosed.
#include "base/epoch.h"
#include "base/thread_annotations.h"

namespace cbtree {

struct OlcNode {
  int keys[8];
  OlcNode* children[8];
  int count;
};

class EpochManager;

// A live guard before the first node access: fine.
int ReadFirstKey(EpochManager* mgr, OlcNode* node) {
  EpochGuard guard(mgr);
  return node->keys[0];
}

// Contract markers push the obligation to the caller: fine.
int ReadUnderCallerGuard(OlcNode* node) CBTREE_REQUIRES_EPOCH {
  return node->keys[node->count - 1];
}

OlcNode* BuildUnpublished(OlcNode* proto) CBTREE_EPOCH_QUIESCENT {
  proto->keys[0] = 1;
  return proto;
}

// Retire under a guard: fine.
void RetireGuarded(EpochManager* mgr, OlcNode* node) {
  EpochGuard guard(mgr);
  RetireObject(mgr, node);
}

// Functions that never touch a node may use EpochGuard freely.
void PinBriefly(EpochManager* mgr) {
  EpochGuard guard(mgr);
}

// A NOLINT escape must be honored.
int SuppressedAccess(OlcNode* node) {
  return node->keys[0];  // NOLINT(cbtree-epoch-guard)
}

}  // namespace cbtree
