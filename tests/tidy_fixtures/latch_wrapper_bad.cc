// Positive fixture for cbtree-latch-wrapper.
#include <mutex>
#include <shared_mutex>

namespace cbtree {

struct CNode {
  std::shared_mutex latch;
  int count = 0;
};

// Raw latch member calls outside the instrumented wrappers: each bypasses
// the latch_check validator and the obs latch counters.
void RawExclusive(CNode* node) {
  node->latch.lock();  // expect-diag: cbtree-latch-wrapper
  ++node->count;
  node->latch.unlock();  // expect-diag: cbtree-latch-wrapper
}

bool RawTryShared(CNode& node) {
  if (!node.latch.try_lock_shared()) {  // expect-diag: cbtree-latch-wrapper
    return false;
  }
  node.latch.unlock_shared();  // expect-diag: cbtree-latch-wrapper
  return true;
}

// std lock adapters over a node latch are the same bypass in disguise.
void AdapterOverLatch(CNode* node) {
  std::unique_lock<std::shared_mutex> guard(node->latch);  // expect-diag: cbtree-latch-wrapper
  ++node->count;
}

}  // namespace cbtree
