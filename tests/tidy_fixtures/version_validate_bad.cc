// Positive fixture for cbtree-version-validate.
#include <cstdint>

namespace cbtree {

struct OlcNode;
bool ReadLockOrRestart(const OlcNode* node, uint64_t* version);
bool Validate(const OlcNode* node, uint64_t version);
bool UpgradeLockOrRestart(OlcNode* node, uint64_t version);
int KeyAt(const OlcNode* node, int index);

// The stamp is taken but never validated: stale data escapes.
int ReadWithoutValidate(const OlcNode* node) {
  uint64_t v = 0;
  ReadLockOrRestart(node, &v);  // expect-diag: cbtree-version-validate
  return KeyAt(node, 0);
}

// Validate called, result thrown away: proves nothing.
int DiscardedValidate(const OlcNode* node) {
  uint64_t v = 0;
  if (!ReadLockOrRestart(node, &v)) return -1;
  int k = KeyAt(node, 0);
  Validate(node, v);  // expect-diag: cbtree-version-validate
  return k;
}

struct RawNode {
  struct Word {
    void store(uint64_t value);
    uint64_t fetch_add(uint64_t delta);
  } version;
};

// Raw version-word mutation outside the named primitives.
void SmashVersion(RawNode* node) {
  node->version.store(0);  // expect-diag: cbtree-version-validate
}

void BumpVersionSideways(RawNode* node) {
  node->version.fetch_add(4);  // expect-diag: cbtree-version-validate
}

}  // namespace cbtree
