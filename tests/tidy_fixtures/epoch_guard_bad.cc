// Positive fixture for cbtree-epoch-guard: every `expect-diag` line below
// must be reported, with the exact check name. Fixtures are analyzer input
// only — never compiled — so declarations are minimal stand-ins.
#include "base/epoch.h"

namespace cbtree {

struct OlcNode {
  int keys[8];
  OlcNode* children[8];
  int count;
};

class EpochManager;

class LeakyCache {
 public:
  EpochManager* mgr;
  EpochGuard guard_;  // expect-diag: cbtree-epoch-guard
};

int ReadFirstKeyUnguarded(OlcNode* node) {
  return node->keys[0];  // expect-diag: cbtree-epoch-guard
}

int GuardTakenTooLate(EpochManager* mgr, OlcNode* node) {
  int k = node->keys[0];  // expect-diag: cbtree-epoch-guard
  EpochGuard guard(mgr);
  return k + node->keys[1];
}

void RetireUnguarded(EpochManager* mgr, OlcNode* node) {
  RetireObject(mgr, node);  // expect-diag: cbtree-epoch-guard
}

void HeapGuard(EpochManager* mgr) {
  EpochGuard* g = new EpochGuard(mgr);  // expect-diag: cbtree-epoch-guard
  delete g;
}

void StaticGuard(EpochManager* mgr) {
  static EpochGuard guard(mgr);  // expect-diag: cbtree-epoch-guard
  (void)guard;
}

}  // namespace cbtree
