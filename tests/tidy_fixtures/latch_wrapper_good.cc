// Negative fixture for cbtree-latch-wrapper.
#include <mutex>
#include <shared_mutex>

namespace cbtree {

struct CNode {
  std::shared_mutex latch;
  int count = 0;
};

// The four instrumented wrappers are the only place raw latch calls live.
void LatchShared(const CNode* node) {
  const_cast<CNode*>(node)->latch.lock_shared();
}

void LatchExclusive(CNode* node) {
  node->latch.lock();
}

void UnlatchShared(const CNode* node) {
  const_cast<CNode*>(node)->latch.unlock_shared();
}

void UnlatchExclusive(CNode* node) {
  node->latch.unlock();
}

// NodeLatch's own methods may touch the underlying primitive.
class NodeLatch {
 public:
  void Acquire() { impl_.latch.lock(); }
  void Release() { impl_.latch.unlock(); }

 private:
  CNode impl_;
};

// Callers go through the wrappers; no raw member calls here.
int ReadCount(const CNode* node) {
  LatchShared(node);
  int count = node->count;
  UnlatchShared(node);
  return count;
}

// A TSA annotation naming the latch is not a member call and must not match.
void AnnotatedOnly(const CNode& node);
// (in the real tree: CBTREE_REQUIRES_SHARED(node.latch) on declarations)

}  // namespace cbtree
