// Negative fixture for cbtree-wal-append.
#include <cstdio>

namespace cbtree {

using Key = long;
using Value = long;

namespace wal {

class ShardLog {
 public:
  unsigned long AppendInsert(Key key, Value value);
  unsigned long AppendDelete(Key key);
  void WaitDurable(unsigned long lsn);
  void SyncAll();

 private:
  bool SyncFd();
  bool FlushGroup(const char* data, unsigned long size);
  int fd_;
};

// The writer-side I/O layer owns the raw syscalls.
bool WriteAll(int fd, const char* data, unsigned long size) {
  while (size > 0) {
    const long n = ::write(fd, data, size);
    if (n < 0) return false;
    data += n;
    size -= static_cast<unsigned long>(n);
  }
  return true;
}

bool ShardLog::SyncFd() { return ::fdatasync(fd_) == 0; }

bool ShardLog::FlushGroup(const char* data, unsigned long size) {
  if (!WriteAll(fd_, data, size)) return false;
  return SyncFd();
}

}  // namespace wal

// A clean mutation path: group-commit API only, no file I/O of its own.
void InsertDurable(wal::ShardLog* log, Key key, Value value) {
  const unsigned long lsn = log->AppendInsert(key, value);
  log->WaitDurable(lsn);
}

struct StatsSink {
  void write(const char* data, unsigned long size);
};

// Outside the wal layer and off the mutation path, ordinary file output
// (a stats stream) is none of this check's business — and a member call
// named `write` on some other abstraction never is.
void EmitStatsLine(std::FILE* stats_file, StatsSink* sink, const char* line,
                   unsigned long size) {
  std::fwrite(line, 1, size, stats_file);
  sink->write(line, size);
}

}  // namespace cbtree
