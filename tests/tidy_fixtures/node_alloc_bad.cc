// Positive fixture for cbtree-node-alloc.

namespace cbtree {

struct OlcNode {
  OlcNode(int level, int capacity);
  int level;
};

struct CNode {
  explicit CNode(int level);
  int level;
};

void Publish(OlcNode* node);

// Naked new of a node type outside the arena/AllocateNode paths.
OlcNode* MakeDetachedLeaf() {
  return new OlcNode(1, 8);  // expect-diag: cbtree-node-alloc
}

void GrowSideways(CNode** out) {
  *out = new CNode(2);  // expect-diag: cbtree-node-alloc
}

// Naked delete of a node pointer outside destructor/reclamation paths:
// a reader may still hold this node.
void FreeEagerly(OlcNode* victim) {
  delete victim;  // expect-diag: cbtree-node-alloc
}

}  // namespace cbtree
