// Negative fixture for cbtree-version-validate.
#include <cstdint>

namespace cbtree {

struct OlcNode;
bool ReadLockOrRestart(const OlcNode* node, uint64_t* version);
bool Validate(const OlcNode* node, uint64_t version);
bool UpgradeLockOrRestart(OlcNode* node, uint64_t version);
int KeyAt(const OlcNode* node, int index);
const OlcNode* ChildAt(const OlcNode* node, int index);

// Stamp taken, data read, stamp validated, result consumed: the canonical
// optimistic read.
bool ReadValidated(const OlcNode* node, int* out) {
  uint64_t v = 0;
  if (!ReadLockOrRestart(node, &v)) return false;
  int k = KeyAt(node, 0);
  if (!Validate(node, v)) return false;
  *out = k;
  return true;
}

// Stamp consumed by the lock upgrade instead of a plain validate.
bool UpgradeConsumes(OlcNode* node) {
  uint64_t v = 0;
  if (!ReadLockOrRestart(const_cast<const OlcNode*>(node), &v)) return false;
  return UpgradeLockOrRestart(node, v);
}

// Hand-off: the child stamp becomes the loop stamp, which the next
// iteration validates. Mirrors SearchAttempt's descent loop.
bool DescendHandsOff(const OlcNode* node, int* out) {
  uint64_t v = 0;
  if (!ReadLockOrRestart(node, &v)) return false;
  for (int level = 3; level > 1; --level) {
    uint64_t cv = 0;
    const OlcNode* child = ChildAt(node, 0);
    if (!ReadLockOrRestart(child, &cv)) return false;
    if (!Validate(node, v)) return false;
    node = child;
    v = cv;
  }
  *out = KeyAt(node, 0);
  return Validate(node, v);
}

}  // namespace cbtree
