// Positive fixture for cbtree-wal-append.
#include <cstdio>

namespace cbtree {

using Key = long;
using Value = long;

namespace wal {

class ShardLog {
 public:
  unsigned long AppendInsert(Key key, Value value);
  unsigned long AppendDelete(Key key);
  void WaitDurable(unsigned long lsn);
};

// Inside the wal namespace, raw write-side syscalls belong to the
// writer-side I/O layer only; an appender-side helper must not write the
// file by hand.
void AppendRawFrame(int fd, const char* data, unsigned long size) {
  ::write(fd, data, size);  // expect-diag: cbtree-wal-append
}

void HardenTail(int fd) {
  ::fsync(fd);  // expect-diag: cbtree-wal-append
}

}  // namespace wal

// A logged mutation path: it commits through the group-commit API, so a
// raw syscall beside it is a second, unaccounted durability channel.
void InsertDurable(wal::ShardLog* log, int fd, Key key, Value value) {
  const unsigned long lsn = log->AppendInsert(key, value);
  ::fdatasync(fd);  // expect-diag: cbtree-wal-append
  log->WaitDurable(lsn);
}

void RemoveAndJournal(wal::ShardLog* log, std::FILE* side_channel, Key key) {
  const unsigned long lsn = log->AppendDelete(key);
  std::fwrite(&key, sizeof(key), 1,  // expect-diag: cbtree-wal-append
              side_channel);
  log->WaitDurable(lsn);
}

}  // namespace cbtree
