// Negative fixture for cbtree-node-alloc.
#include "base/thread_annotations.h"

namespace cbtree {

struct OlcNode {
  OlcNode(int level, int capacity);
  int level;
};

class Tree {
 public:
  ~Tree();

 private:
  // The allocator path owns naked new.
  OlcNode* AllocateNode(int level) const;
  // Epoch-quiescent reclamation owns naked delete.
  void FreeRetired(OlcNode* node) CBTREE_EPOCH_QUIESCENT;

  OlcNode* root_;
};

OlcNode* Tree::AllocateNode(int level) const {
  return new OlcNode(level, 8);
}

void Tree::FreeRetired(OlcNode* node) CBTREE_EPOCH_QUIESCENT {
  delete node;
}

// Destructors tear down quiescent trees.
Tree::~Tree() {
  OlcNode* node = root_;
  delete node;
}

}  // namespace cbtree
