// Positive fixture for cbtree-obs-compile-out. Deliberately includes no
// project headers, so CBTREE_OBS_ENABLED has no establishing default here.

// #ifdef on a macro that is always defined (0 or 1) is always-true.
#ifdef CBTREE_OBS_ENABLED  // expect-diag: cbtree-obs-compile-out
static int always_compiled = 1;
#endif

// #ifndef outside the default-define idiom is always-false dead code.
#ifndef CBTREE_OBS_ENABLED  // expect-diag: cbtree-obs-compile-out
static int never_compiled = 1;
#endif

// defined() has the same always-true problem.
#if defined(CBTREE_OBS_ENABLED)  // expect-diag: cbtree-obs-compile-out
static int also_always = 1;
#endif

// Testing the value without any header that establishes the default:
// an out-of-order include silently compiles the obs layer out.
#if CBTREE_OBS_ENABLED  // expect-diag: cbtree-obs-compile-out
static int maybe = 1;
#endif

namespace cbtree {

// obs::internal is private to src/obs/.
void PokeRegistryInternals() {
  obs::internal::FlushAll();  // expect-diag: cbtree-obs-compile-out
}

}  // namespace cbtree
