// Negative fixture for cbtree-obs-compile-out.
#include "obs/registry.h"

// Value test with the default established by the include above: fine.
#if CBTREE_OBS_ENABLED
static int obs_on = 1;
#else
static int obs_on = 0;
#endif

// The default-define idiom itself (ifndef immediately followed by define)
// is the one legal shape for #ifndef.
#ifndef CBTREE_OBS_ENABLED
#define CBTREE_OBS_ENABLED 0
#endif

namespace cbtree {

// Public obs handles are the compile-out-safe surface.
void CountSomething(obs::Counter* counter) {
  counter->Add();
}

}  // namespace cbtree
