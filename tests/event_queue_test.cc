#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace cbtree {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(3.0, [&] { order.push_back(3); });
  queue.Schedule(1.0, [&] { order.push_back(1); });
  queue.Schedule(2.0, [&] { order.push_back(2); });
  while (queue.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueueTest, EqualTimesFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (queue.RunNext()) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, HandlersCanScheduleMore) {
  EventQueue queue;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) queue.ScheduleAfter(1.0, chain);
  };
  queue.ScheduleAfter(1.0, chain);
  while (queue.RunNext()) {
  }
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(queue.now(), 5.0);
  EXPECT_EQ(queue.dispatched(), 5u);
}

TEST(EventQueueTest, EmptyQueueReturnsFalse) {
  EventQueue queue;
  EXPECT_FALSE(queue.RunNext());
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
}

}  // namespace
}  // namespace cbtree
