#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/flags.h"
#include "util/table.h"

namespace cbtree {
namespace {

TEST(TableTest, AlignsColumnsAndFormatsCells) {
  Table table({"x", "name", "value"});
  table.NewRow().Add(1).Add(std::string("alpha")).Add(1.5);
  table.NewRow().Add(22).Add(std::string("b")).Add(0.333333333);
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("0.333333"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, CsvOutput) {
  Table table({"a", "b"});
  table.NewRow().Add(1).Add(2.5);
  table.NewRow().Add(3).AddNA();
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2.5\n3,n/a\n");
}

TEST(TableTest, FormatDoubleHandlesSpecials) {
  EXPECT_EQ(Table::FormatDouble(std::nan("")), "n/a");
  EXPECT_EQ(Table::FormatDouble(1.0), "1");
  EXPECT_EQ(Table::FormatDouble(0.5), "0.5");
  EXPECT_EQ(Table::FormatDouble(std::numeric_limits<double>::infinity()),
            "inf");
}

TEST(FlagsTest, ParsesTypedFlags) {
  FlagSet flags;
  double d = 1.0;
  int i = 2;
  bool b = false;
  std::string s = "x";
  flags.Register("dbl", &d, "a double");
  flags.Register("int", &i, "an int");
  flags.Register("flag", &b, "a bool");
  flags.Register("str", &s, "a string");
  const char* argv[] = {"prog", "--dbl=2.5", "--int", "7", "--flag",
                        "--str=hello", "positional"};
  auto positional = flags.Parse(7, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(i, 7);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "hello");
  ASSERT_EQ(positional.size(), 1u);
  EXPECT_EQ(positional[0], "positional");
}

TEST(FlagsTest, BoolAcceptsExplicitValue) {
  FlagSet flags;
  bool b = true;
  flags.Register("flag", &b, "a bool");
  const char* argv[] = {"prog", "--flag=false"};
  flags.Parse(2, const_cast<char**>(argv));
  EXPECT_FALSE(b);
}

}  // namespace
}  // namespace cbtree
