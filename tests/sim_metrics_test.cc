// SimMetrics warm-up semantics: everything recorded before Activate() is
// discarded, everything after it counts, and the activation time anchors the
// measured window.

#include <gtest/gtest.h>

#include "sim/metrics.h"

namespace cbtree {
namespace {

TEST(SimMetricsTest, InactiveByDefaultAndDiscardsEverything) {
  SimMetrics metrics;
  EXPECT_FALSE(metrics.active());
  metrics.RecordResponse(OpType::kSearch, 5.0);
  metrics.RecordResponse(OpType::kInsert, 7.0);
  metrics.RecordLockWait(2, /*write=*/true, 1.5);
  metrics.RecordLinkCrossing();
  metrics.RecordRestart();
  EXPECT_EQ(metrics.completed(), 0u);
  EXPECT_EQ(metrics.response_all().count(), 0u);
  EXPECT_EQ(metrics.response(OpType::kSearch).count(), 0u);
  EXPECT_EQ(metrics.lock_wait_w(2).count(), 0u);
  EXPECT_EQ(metrics.link_crossings(), 0u);
  EXPECT_EQ(metrics.restarts(), 0u);
  EXPECT_EQ(metrics.response_histogram().count(), 0u);
}

TEST(SimMetricsTest, ActivateStartsTheMeasuredWindow) {
  SimMetrics metrics;
  metrics.RecordResponse(OpType::kSearch, 100.0);  // warm-up, discarded
  metrics.RecordRestart();
  metrics.Activate(12.5);
  EXPECT_TRUE(metrics.active());
  EXPECT_DOUBLE_EQ(metrics.activation_time(), 12.5);

  metrics.RecordResponse(OpType::kSearch, 4.0);
  metrics.RecordResponse(OpType::kDelete, 6.0);
  metrics.RecordLockWait(1, /*write=*/false, 0.5);
  metrics.RecordLinkCrossing();
  metrics.RecordRestart();

  EXPECT_EQ(metrics.completed(), 2u);
  EXPECT_EQ(metrics.response(OpType::kSearch).count(), 1u);
  EXPECT_DOUBLE_EQ(metrics.response(OpType::kSearch).mean(), 4.0);
  EXPECT_EQ(metrics.response(OpType::kDelete).count(), 1u);
  EXPECT_EQ(metrics.response_all().count(), 2u);
  EXPECT_DOUBLE_EQ(metrics.response_all().mean(), 5.0);
  EXPECT_EQ(metrics.lock_wait_r(1).count(), 1u);
  EXPECT_EQ(metrics.link_crossings(), 1u);
  EXPECT_EQ(metrics.restarts(), 1u);
  // The warm-up response never reached the histogram either.
  EXPECT_EQ(metrics.response_histogram().count(), 2u);
}

TEST(SimMetricsTest, ActiveOpsProfileTracksOnlyMeasuredTime) {
  SimMetrics metrics;
  metrics.RecordActiveOps(0.0, 10);  // warm-up: not part of the profile
  metrics.Activate(10.0);
  metrics.RecordActiveOps(12.0, 4);
  // Activate restarts the profile at 10: [10, 12) contributes nothing,
  // [12, 14) holds 4, so the average is (0*2 + 4*2) / 4 = 2.
  double avg = metrics.mean_active_ops(14.0);
  EXPECT_DOUBLE_EQ(avg, 2.0);
  EXPECT_DOUBLE_EQ(metrics.active_ops_profile().Average(14.0), avg);
}

TEST(SimMetricsTest, MaxActiveOpsTracksAllTime) {
  SimMetrics metrics;
  metrics.RecordActiveOps(0.0, 3);
  metrics.Activate(1.0);
  metrics.RecordActiveOps(2.0, 2);
  EXPECT_EQ(metrics.max_active_ops(), 3u);
}

}  // namespace
}  // namespace cbtree
