// The paper's validation claim (§5.3, Figures 3-8): the analytical model and
// the simulator predict the same response times. These are the repo's
// integration tests — coarse tolerances, exactly like reading the paper's
// figures, but on a smaller tree so they run quickly.

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "sim/simulator.h"

namespace cbtree {
namespace {

constexpr uint64_t kItems = 4000;
constexpr int kNodeSize = 13;
constexpr double kDiskCost = 5.0;

SimConfig MakeSimConfig(Algorithm algorithm, double lambda, uint64_t seed) {
  SimConfig config;
  config.algorithm = algorithm;
  config.lambda = lambda;
  config.mix = OperationMix{0.3, 0.5, 0.2};
  config.num_operations = 8000;
  config.warmup_operations = 800;
  config.num_items = kItems;
  config.max_node_size = kNodeSize;
  config.disk_cost = kDiskCost;
  config.seed = seed;
  return config;
}

ModelParams MakeModelParams() {
  return ModelParams::ForTree(kItems, kNodeSize, kDiskCost,
                              OperationMix{0.3, 0.5, 0.2});
}

struct Agreement {
  double analytic;
  double simulated;
};

Agreement CompareSearch(Algorithm algorithm, double lambda) {
  auto analyzer = MakeAnalyzer(algorithm, MakeModelParams());
  AnalysisResult analysis = analyzer->Analyze(lambda);
  EXPECT_TRUE(analysis.stable);
  Accumulator sim_mean;
  for (uint64_t seed : {1u, 2u, 3u}) {
    SimResult r = Simulator(MakeSimConfig(algorithm, lambda, seed)).Run();
    EXPECT_FALSE(r.saturated);
    sim_mean.Add(r.resp_search.mean());
  }
  return {analysis.per_search, sim_mean.mean()};
}

Agreement CompareInsert(Algorithm algorithm, double lambda) {
  auto analyzer = MakeAnalyzer(algorithm, MakeModelParams());
  AnalysisResult analysis = analyzer->Analyze(lambda);
  EXPECT_TRUE(analysis.stable);
  Accumulator sim_mean;
  for (uint64_t seed : {1u, 2u, 3u}) {
    SimResult r = Simulator(MakeSimConfig(algorithm, lambda, seed)).Run();
    EXPECT_FALSE(r.saturated);
    sim_mean.Add(r.resp_insert.mean());
  }
  return {analysis.per_insert, sim_mean.mean()};
}

// Tolerances: the paper's own figures show the analysis tracking the
// simulation within roughly 10-20% until close to saturation.
constexpr double kTolerance = 0.30;

TEST(SimVsModelTest, NaiveSearchLowLoad) {
  Agreement a = CompareSearch(Algorithm::kNaiveLockCoupling, 0.01);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

TEST(SimVsModelTest, NaiveSearchModerateLoad) {
  Agreement a = CompareSearch(Algorithm::kNaiveLockCoupling, 0.06);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

TEST(SimVsModelTest, NaiveInsertModerateLoad) {
  Agreement a = CompareInsert(Algorithm::kNaiveLockCoupling, 0.06);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

TEST(SimVsModelTest, OptimisticSearchModerateLoad) {
  Agreement a = CompareSearch(Algorithm::kOptimisticDescent, 0.1);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

TEST(SimVsModelTest, OptimisticInsertModerateLoad) {
  Agreement a = CompareInsert(Algorithm::kOptimisticDescent, 0.1);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

TEST(SimVsModelTest, LinkTypeSearchHighLoad) {
  Agreement a = CompareSearch(Algorithm::kLinkType, 0.3);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

TEST(SimVsModelTest, LinkTypeInsertHighLoad) {
  Agreement a = CompareInsert(Algorithm::kLinkType, 0.3);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

TEST(SimVsModelTest, SimulatedRootUtilizationTracksModel) {
  double lambda = 0.06;
  auto analyzer = MakeAnalyzer(Algorithm::kNaiveLockCoupling,
                               MakeModelParams());
  AnalysisResult analysis = analyzer->Analyze(lambda);
  ASSERT_TRUE(analysis.stable);
  SimResult r =
      Simulator(MakeSimConfig(Algorithm::kNaiveLockCoupling, lambda, 1))
          .Run();
  ASSERT_FALSE(r.saturated);
  EXPECT_NEAR(r.root_writer_utilization, analysis.root_writer_utilization(),
              0.15);
}

TEST(SimVsModelTest, SaturationPointsAgreeInOrder) {
  // The simulator should saturate somewhere near the model's maximum
  // throughput for Naive Lock-coupling: stable well below, saturated well
  // above.
  auto analyzer = MakeAnalyzer(Algorithm::kNaiveLockCoupling,
                               MakeModelParams());
  double max_rate = analyzer->MaxThroughput();
  SimConfig below = MakeSimConfig(Algorithm::kNaiveLockCoupling,
                                  max_rate * 0.6, 1);
  below.max_active_ops = 3000;
  EXPECT_FALSE(Simulator(below).Run().saturated);
  SimConfig above = MakeSimConfig(Algorithm::kNaiveLockCoupling,
                                  max_rate * 2.0, 1);
  above.max_active_ops = 3000;
  EXPECT_TRUE(Simulator(above).Run().saturated);
}

}  // namespace
}  // namespace cbtree
