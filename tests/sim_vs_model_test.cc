// The paper's validation claim (§5.3, Figures 3-8): the analytical model and
// the simulator predict the same response times. These are the repo's
// integration tests — coarse tolerances, exactly like reading the paper's
// figures, but on a smaller tree so they run quickly.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/analyzer.h"
#include "sim/simulator.h"

namespace cbtree {
namespace {

constexpr uint64_t kItems = 4000;
constexpr int kNodeSize = 13;
constexpr double kDiskCost = 5.0;

SimConfig MakeSimConfig(Algorithm algorithm, double lambda, uint64_t seed) {
  SimConfig config;
  config.algorithm = algorithm;
  config.lambda = lambda;
  config.mix = OperationMix{0.3, 0.5, 0.2};
  config.num_operations = 8000;
  config.warmup_operations = 800;
  config.num_items = kItems;
  config.max_node_size = kNodeSize;
  config.disk_cost = kDiskCost;
  config.seed = seed;
  return config;
}

ModelParams MakeModelParams() {
  return ModelParams::ForTree(kItems, kNodeSize, kDiskCost,
                              OperationMix{0.3, 0.5, 0.2});
}

struct Agreement {
  double analytic;
  double simulated;
};

Agreement CompareSearch(Algorithm algorithm, double lambda) {
  auto analyzer = MakeAnalyzer(algorithm, MakeModelParams());
  AnalysisResult analysis = analyzer->Analyze(lambda);
  EXPECT_TRUE(analysis.stable);
  Accumulator sim_mean;
  for (uint64_t seed : {1u, 2u, 3u}) {
    SimResult r = Simulator(MakeSimConfig(algorithm, lambda, seed)).Run();
    EXPECT_FALSE(r.saturated);
    sim_mean.Add(r.resp_search.mean());
  }
  return {analysis.per_search, sim_mean.mean()};
}

Agreement CompareInsert(Algorithm algorithm, double lambda) {
  auto analyzer = MakeAnalyzer(algorithm, MakeModelParams());
  AnalysisResult analysis = analyzer->Analyze(lambda);
  EXPECT_TRUE(analysis.stable);
  Accumulator sim_mean;
  for (uint64_t seed : {1u, 2u, 3u}) {
    SimResult r = Simulator(MakeSimConfig(algorithm, lambda, seed)).Run();
    EXPECT_FALSE(r.saturated);
    sim_mean.Add(r.resp_insert.mean());
  }
  return {analysis.per_insert, sim_mean.mean()};
}

// Tolerances: the paper's own figures show the analysis tracking the
// simulation within roughly 10-20% until close to saturation.
constexpr double kTolerance = 0.30;

TEST(SimVsModelTest, NaiveSearchLowLoad) {
  Agreement a = CompareSearch(Algorithm::kNaiveLockCoupling, 0.01);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

TEST(SimVsModelTest, NaiveSearchModerateLoad) {
  Agreement a = CompareSearch(Algorithm::kNaiveLockCoupling, 0.06);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

TEST(SimVsModelTest, NaiveInsertModerateLoad) {
  Agreement a = CompareInsert(Algorithm::kNaiveLockCoupling, 0.06);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

TEST(SimVsModelTest, OptimisticSearchModerateLoad) {
  Agreement a = CompareSearch(Algorithm::kOptimisticDescent, 0.1);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

TEST(SimVsModelTest, OptimisticInsertModerateLoad) {
  Agreement a = CompareInsert(Algorithm::kOptimisticDescent, 0.1);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

TEST(SimVsModelTest, LinkTypeSearchHighLoad) {
  Agreement a = CompareSearch(Algorithm::kLinkType, 0.3);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

TEST(SimVsModelTest, LinkTypeInsertHighLoad) {
  Agreement a = CompareInsert(Algorithm::kLinkType, 0.3);
  EXPECT_NEAR(a.simulated / a.analytic, 1.0, kTolerance);
}

// ---------------------------------------------------------------------------
// OLC: the fifth protocol's model must track the simulator on response
// times AND on the restart rate (its distinguishing observable) across the
// read-mix spectrum. Restarts are rare events, so the simulation pools more
// operations and the rate check combines a relative band with an absolute
// floor (at a few-per-ten-thousand rate, Poisson noise dominates).
// ---------------------------------------------------------------------------

struct OlcAgreement {
  AnalysisResult analysis;
  double sim_search = 0.0;
  double sim_insert = 0.0;
  double sim_restart_rate = 0.0;  ///< pooled restarts per completed op
  double sim_throughput = 0.0;    ///< pooled completions per time
};

OlcAgreement CompareOlc(OperationMix mix, double lambda) {
  auto analyzer = MakeAnalyzer(
      Algorithm::kOlc,
      ModelParams::ForTree(kItems, kNodeSize, kDiskCost, mix));
  OlcAgreement out;
  out.analysis = analyzer->Analyze(lambda);
  EXPECT_TRUE(out.analysis.stable);
  Accumulator search, insert, throughput;
  uint64_t restarts = 0, completed = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    SimConfig config = MakeSimConfig(Algorithm::kOlc, lambda, seed);
    config.mix = mix;
    config.num_operations = 20000;
    config.warmup_operations = 2000;
    SimResult r = Simulator(config).Run();
    EXPECT_FALSE(r.saturated);
    search.Add(r.resp_search.mean());
    insert.Add(r.resp_insert.mean());
    throughput.Add(r.throughput);
    restarts += r.restarts;
    completed += r.completed;
  }
  out.sim_search = search.mean();
  out.sim_insert = insert.mean();
  out.sim_throughput = throughput.mean();
  out.sim_restart_rate =
      completed > 0 ? static_cast<double>(restarts) / completed : 0.0;
  return out;
}

void ExpectOlcAgreement(OperationMix mix, double lambda) {
  OlcAgreement a = CompareOlc(mix, lambda);
  EXPECT_NEAR(a.sim_search / a.analysis.per_search, 1.0, kTolerance);
  EXPECT_NEAR(a.sim_insert / a.analysis.per_insert, 1.0, kTolerance);
  // Open-loop and stable: the sustained rate must match the offered rate,
  // which the model certifies by reporting the point as stable.
  EXPECT_NEAR(a.sim_throughput / lambda, 1.0, 0.10);
  // Restart rate: model vs simulation, 50% relative band with an absolute
  // floor of 5 per 10k ops for the read-mostly point where both are tiny.
  double tolerance = std::max(0.5 * a.analysis.restart_rate, 5e-4);
  EXPECT_NEAR(a.sim_restart_rate, a.analysis.restart_rate, tolerance)
      << "mix {" << mix.q_s << ", " << mix.q_i << ", " << mix.q_d
      << "} lambda " << lambda;
}

TEST(SimVsModelTest, OlcReadMostlyMix) {
  ExpectOlcAgreement(OperationMix{0.95, 0.03, 0.02}, 0.3);
}

TEST(SimVsModelTest, OlcBalancedMix) {
  ExpectOlcAgreement(OperationMix{0.5, 0.3, 0.2}, 0.3);
}

TEST(SimVsModelTest, OlcWriteHeavyMix) {
  ExpectOlcAgreement(OperationMix{0.2, 0.5, 0.3}, 0.3);
}

TEST(SimVsModelTest, SimulatedRootUtilizationTracksModel) {
  double lambda = 0.06;
  auto analyzer = MakeAnalyzer(Algorithm::kNaiveLockCoupling,
                               MakeModelParams());
  AnalysisResult analysis = analyzer->Analyze(lambda);
  ASSERT_TRUE(analysis.stable);
  SimResult r =
      Simulator(MakeSimConfig(Algorithm::kNaiveLockCoupling, lambda, 1))
          .Run();
  ASSERT_FALSE(r.saturated);
  EXPECT_NEAR(r.root_writer_utilization, analysis.root_writer_utilization(),
              0.15);
}

TEST(SimVsModelTest, SaturationPointsAgreeInOrder) {
  // The simulator should saturate somewhere near the model's maximum
  // throughput for Naive Lock-coupling: stable well below, saturated well
  // above.
  auto analyzer = MakeAnalyzer(Algorithm::kNaiveLockCoupling,
                               MakeModelParams());
  double max_rate = analyzer->MaxThroughput();
  SimConfig below = MakeSimConfig(Algorithm::kNaiveLockCoupling,
                                  max_rate * 0.6, 1);
  below.max_active_ops = 3000;
  EXPECT_FALSE(Simulator(below).Run().saturated);
  SimConfig above = MakeSimConfig(Algorithm::kNaiveLockCoupling,
                                  max_rate * 2.0, 1);
  above.max_active_ops = 3000;
  EXPECT_TRUE(Simulator(above).Run().saturated);
}

}  // namespace
}  // namespace cbtree
