// Wire-protocol unit tests: every frame round-trips bit-exactly, and every
// malformed input (truncation, oversized length, garbage opcode/status) is
// rejected as kNeedMore or kError without touching the outputs — the
// no-crash, clean-error contract tests/net_server_test.cc exercises end to
// end over a socket.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace cbtree {
namespace net {
namespace {

const uint8_t* Bytes(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

TEST(NetProtoTest, RequestRoundTripsEveryOpCode) {
  const OpCode ops[] = {OpCode::kSearch, OpCode::kInsert, OpCode::kDelete,
                        OpCode::kStats};
  for (OpCode op : ops) {
    Request in;
    in.op = op;
    in.id = 0x0123456789abcdefull;
    in.key = -42;
    in.value = 99;
    std::string wire;
    AppendRequest(in, &wire);
    ASSERT_EQ(wire.size(), kRequestFrameSize);

    Request out;
    size_t consumed = 0;
    ASSERT_EQ(DecodeRequest(Bytes(wire), wire.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, kRequestFrameSize);
    EXPECT_EQ(out.op, in.op);
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.key, in.key);
    EXPECT_EQ(out.value, in.value);
  }
}

TEST(NetProtoTest, ResponseRoundTripsEveryStatus) {
  // Statuses 1..9 are the fixed-size frames; kStats (10) is the one
  // variable-length frame and round-trips in StatsResponseRoundTrips below.
  for (uint8_t raw = 1; raw <= 9; ++raw) {
    ASSERT_TRUE(IsValidStatus(raw));
    Response in;
    in.status = static_cast<Status>(raw);
    in.id = raw * 1000ull;
    in.value = static_cast<Value>(-1) * raw;
    std::string wire;
    AppendResponse(in, &wire);
    ASSERT_EQ(wire.size(), kResponseFrameSize);

    Response out;
    size_t consumed = 0;
    ASSERT_EQ(DecodeResponse(Bytes(wire), wire.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, kResponseFrameSize);
    EXPECT_EQ(out.status, in.status);
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.value, in.value);
  }
}

TEST(NetProtoTest, ExtremeKeyValuesSurvive) {
  Request in;
  in.op = OpCode::kInsert;
  in.id = UINT64_MAX;
  in.key = INT64_MIN;
  in.value = INT64_MAX;
  std::string wire;
  AppendRequest(in, &wire);
  Request out;
  size_t consumed = 0;
  ASSERT_EQ(DecodeRequest(Bytes(wire), wire.size(), &out, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(out.id, UINT64_MAX);
  EXPECT_EQ(out.key, INT64_MIN);
  EXPECT_EQ(out.value, INT64_MAX);
}

TEST(NetProtoTest, LittleEndianOnTheWire) {
  Request in;
  in.op = OpCode::kSearch;
  in.id = 0x01;
  in.key = 0x0203;
  in.value = 0;
  std::string wire;
  AppendRequest(in, &wire);
  // [len u32 LE][op][id u64 LE][key i64 LE][value i64 LE]
  EXPECT_EQ(static_cast<uint8_t>(wire[0]), kRequestPayloadSize);
  EXPECT_EQ(static_cast<uint8_t>(wire[1]), 0);
  EXPECT_EQ(static_cast<uint8_t>(wire[4]), 1);     // opcode
  EXPECT_EQ(static_cast<uint8_t>(wire[5]), 0x01);  // id LSB
  EXPECT_EQ(static_cast<uint8_t>(wire[13]), 0x03); // key LSB
  EXPECT_EQ(static_cast<uint8_t>(wire[14]), 0x02);
}

TEST(NetProtoTest, EveryTruncationPrefixNeedsMore) {
  Request in;
  in.op = OpCode::kDelete;
  in.id = 7;
  in.key = 123456789;
  std::string wire;
  AppendRequest(in, &wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    Request out;
    out.id = 0xdead;
    size_t consumed = 0xbeef;
    EXPECT_EQ(DecodeRequest(Bytes(wire), len, &out, &consumed),
              DecodeStatus::kNeedMore)
        << "prefix length " << len;
    // Outputs untouched on kNeedMore.
    EXPECT_EQ(out.id, 0xdeadu);
    EXPECT_EQ(consumed, 0xbeefu);
  }
}

TEST(NetProtoTest, OversizedLengthIsAnErrorNotABufferDemand) {
  // A hostile length prefix must be rejected from the 4 length bytes alone —
  // the decoder must never ask the caller to buffer up to it.
  std::string wire;
  const uint32_t huge = 64 * 1024 * 1024;
  for (int shift = 0; shift < 32; shift += 8) {
    wire.push_back(static_cast<char>((huge >> shift) & 0xff));
  }
  Request out;
  size_t consumed = 0;
  EXPECT_EQ(DecodeRequest(Bytes(wire), wire.size(), &out, &consumed),
            DecodeStatus::kError);
}

TEST(NetProtoTest, WrongFixedLengthIsAnError) {
  for (uint32_t len : {0u, 1u, kRequestPayloadSize - 1, kRequestPayloadSize + 1,
                       kResponsePayloadSize}) {
    if (len == kRequestPayloadSize) continue;
    std::string wire;
    for (int shift = 0; shift < 32; shift += 8) {
      wire.push_back(static_cast<char>((len >> shift) & 0xff));
    }
    Request out;
    size_t consumed = 0;
    EXPECT_EQ(DecodeRequest(Bytes(wire), wire.size(), &out, &consumed),
              DecodeStatus::kError)
        << "length " << len;
  }
}

TEST(NetProtoTest, GarbageOpCodeIsAnError) {
  Request in;
  in.op = OpCode::kSearch;
  in.id = 1;
  std::string wire;
  AppendRequest(in, &wire);
  for (int bad : {0, 5, 6, 0x7f, 0xff}) {
    std::string corrupt = wire;
    corrupt[4] = static_cast<char>(bad);
    Request out;
    size_t consumed = 0;
    EXPECT_EQ(DecodeRequest(Bytes(corrupt), corrupt.size(), &out, &consumed),
              DecodeStatus::kError)
        << "opcode " << bad;
  }
}

TEST(NetProtoTest, GarbageStatusIsAnError) {
  Response in;
  in.status = Status::kFound;
  in.id = 1;
  std::string wire;
  AppendResponse(in, &wire);
  for (int bad : {0, 11, 0x80, 0xff}) {
    std::string corrupt = wire;
    corrupt[4] = static_cast<char>(bad);
    Response out;
    size_t consumed = 0;
    EXPECT_EQ(DecodeResponse(Bytes(corrupt), corrupt.size(), &out, &consumed),
              DecodeStatus::kError)
        << "status " << bad;
  }
}

TEST(NetProtoTest, PipelinedFramesDecodeInOrder) {
  std::string wire;
  for (uint64_t id = 1; id <= 5; ++id) {
    Request request;
    request.op = static_cast<OpCode>(1 + (id % 3));
    request.id = id;
    request.key = static_cast<Key>(id * 10);
    AppendRequest(request, &wire);
  }
  size_t offset = 0;
  for (uint64_t id = 1; id <= 5; ++id) {
    Request out;
    size_t consumed = 0;
    ASSERT_EQ(DecodeRequest(Bytes(wire) + offset, wire.size() - offset, &out,
                            &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(out.id, id);
    EXPECT_EQ(out.key, static_cast<Key>(id * 10));
    offset += consumed;
  }
  EXPECT_EQ(offset, wire.size());
}

TEST(NetProtoTest, IncrementalArrivalDecodesAtTheBoundary) {
  // Feed the frame byte by byte, as a slow network would: kNeedMore until
  // the last byte lands, then exactly one clean decode.
  Request in;
  in.op = OpCode::kInsert;
  in.id = 42;
  in.key = 4242;
  in.value = -1;
  std::string wire;
  AppendRequest(in, &wire);
  std::string received;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    received.push_back(wire[i]);
    Request out;
    size_t consumed = 0;
    ASSERT_EQ(DecodeRequest(Bytes(received), received.size(), &out, &consumed),
              DecodeStatus::kNeedMore);
  }
  received.push_back(wire.back());
  Request out;
  size_t consumed = 0;
  ASSERT_EQ(DecodeRequest(Bytes(received), received.size(), &out, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(out.id, 42u);
}

TEST(NetProtoTest, NamesAreStable) {
  EXPECT_STREQ(OpCodeName(OpCode::kSearch), "search");
  EXPECT_STREQ(OpCodeName(OpCode::kInsert), "insert");
  EXPECT_STREQ(OpCodeName(OpCode::kDelete), "delete");
  EXPECT_STREQ(OpCodeName(OpCode::kStats), "stats");
  EXPECT_STREQ(StatusName(Status::kRejected), "rejected");
  EXPECT_STREQ(StatusName(Status::kShuttingDown), "shutting_down");
  EXPECT_STREQ(StatusName(Status::kBadFrame), "bad_frame");
  EXPECT_STREQ(StatusName(Status::kStats), "stats");
}

TEST(NetProtoTest, StatsResponseRoundTrips) {
  for (const std::string& body :
       {std::string(), std::string("{\"uptime_s\":1.5}"),
        std::string(4096, 'x'), std::string("embedded\0nul", 12)}) {
    Response in;
    in.status = Status::kStats;
    in.id = 0xfeedfacecafebeefull;
    in.body = body;
    std::string wire;
    AppendResponse(in, &wire);
    ASSERT_EQ(wire.size(), 4 + kStatsHeaderSize + body.size());

    Response out;
    out.value = 1234;  // must be reset to 0 by the stats decode path
    size_t consumed = 0;
    ASSERT_EQ(DecodeResponse(Bytes(wire), wire.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(out.status, Status::kStats);
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.value, 0);
    EXPECT_EQ(out.body, body);
  }
}

TEST(NetProtoTest, StatsResponseEveryTruncationNeedsMore) {
  Response in;
  in.status = Status::kStats;
  in.id = 77;
  in.body = "per-shard interval stats body";
  std::string wire;
  AppendResponse(in, &wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    Response out;
    size_t consumed = 0xbeef;
    EXPECT_EQ(DecodeResponse(Bytes(wire), len, &out, &consumed),
              DecodeStatus::kNeedMore)
        << "prefix length " << len;
    EXPECT_EQ(consumed, 0xbeefu);
  }
}

TEST(NetProtoTest, StatsResponseHostileLengthsAreErrors) {
  Response in;
  in.status = Status::kStats;
  in.id = 1;
  in.body = "ok";
  std::string wire;
  AppendResponse(in, &wire);
  // Payloads below the stats header or above the cap must be rejected from
  // the prefix alone (no buffering demand).
  for (uint32_t len : {0u, 1u, kStatsHeaderSize - 1, kMaxStatsPayload + 1,
                       0xffffffffu}) {
    std::string corrupt = wire;
    for (int shift = 0; shift < 32; shift += 8) {
      corrupt[shift / 8] = static_cast<char>((len >> shift) & 0xff);
    }
    Response out;
    size_t consumed = 0;
    EXPECT_EQ(DecodeResponse(Bytes(corrupt), corrupt.size(), &out, &consumed),
              DecodeStatus::kError)
        << "length " << len;
  }
  // A non-stats status byte with a variable length is a framing error too.
  std::string fixed_status = wire;
  fixed_status[4] = static_cast<char>(Status::kFound);
  Response out;
  size_t consumed = 0;
  EXPECT_EQ(
      DecodeResponse(Bytes(fixed_status), fixed_status.size(), &out, &consumed),
      DecodeStatus::kError);
}

TEST(NetProtoTest, OversizedStatsBodyIsClampedAtTheCap) {
  Response in;
  in.status = Status::kStats;
  in.id = 9;
  in.body.assign(kMaxStatsPayload, 'z');  // larger than the cap allows
  std::string wire;
  AppendResponse(in, &wire);
  ASSERT_EQ(wire.size(), 4 + static_cast<size_t>(kMaxStatsPayload));
  Response out;
  size_t consumed = 0;
  ASSERT_EQ(DecodeResponse(Bytes(wire), wire.size(), &out, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(out.body.size(), kMaxStatsPayload - kStatsHeaderSize);
}

}  // namespace
}  // namespace net
}  // namespace cbtree
