// The experiment runner's thread pool and fan-out primitives: FIFO task
// ordering, exception propagation through futures, shutdown with queued
// work, and the determinism contract — identical sweep output for any
// jobs count.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "runner/experiment.h"
#include "runner/thread_pool.h"

namespace cbtree {
namespace {

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  std::vector<int> order;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&order, i] { order.push_back(i); });
    }
  }  // destructor drains the queue
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ReturnsValuesThroughFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 7; });
  auto boom = pool.Submit(
      []() -> int { throw std::runtime_error("job failed"); });
  EXPECT_EQ(ok.get(), 7);
  try {
    boom.get();
    FAIL() << "expected the job's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job failed");
  }
}

TEST(ThreadPoolTest, ShutdownRunsAllQueuedWork) {
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        completed.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    // Destruction begins with most tasks still queued; all must run.
  }
  EXPECT_EQ(completed.load(), 200);
  for (auto& future : futures) {
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ThreadPoolTest, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultJobs(), 1);
  EXPECT_EQ(runner::EffectiveJobs(0), ThreadPool::DefaultJobs());
  EXPECT_EQ(runner::EffectiveJobs(-3), ThreadPool::DefaultJobs());
  EXPECT_EQ(runner::EffectiveJobs(4), 4);
}

TEST(ParallelMapTest, ResultsComeBackInIndexOrder) {
  std::vector<int> results = runner::ParallelMap(64, 8, [](size_t i) {
    // Stagger so later indices tend to finish first.
    std::this_thread::sleep_for(std::chrono::microseconds(200 - 3 * i));
    return static_cast<int>(i) * 10;
  });
  ASSERT_EQ(results.size(), 64u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 10);
  }
}

TEST(ParallelMapTest, SerialAndParallelAgree) {
  auto fn = [](size_t i) { return static_cast<double>(i) / 7.0; };
  EXPECT_EQ(runner::ParallelMap(33, 1, fn), runner::ParallelMap(33, 8, fn));
}

TEST(ParallelMapTest, RethrowsLowestIndexException) {
  try {
    runner::ParallelMap(16, 4, [](size_t i) -> int {
      if (i == 3) throw std::runtime_error("index 3");
      if (i == 11) throw std::runtime_error("index 11");
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 3");
  }
}

// The tentpole guarantee: a sweep's points — and their serialized JSON —
// are byte-identical for any jobs count.
TEST(SweepDeterminismTest, JsonIdenticalForOneAndEightJobs) {
  ModelParams params =
      ModelParams::ForTree(40000, 13, 5.0, OperationMix{0.3, 0.5, 0.2});
  auto analyzer = MakeAnalyzer(Algorithm::kLinkType, params);
  std::vector<double> lambdas;
  for (int i = 1; i <= 20; ++i) lambdas.push_back(0.05 * i);

  runner::SweepRun serial =
      runner::RunAnalyticalSweep(*analyzer, lambdas, 1);
  runner::SweepRun parallel =
      runner::RunAnalyticalSweep(*analyzer, lambdas, 8);

  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].lambda, parallel.points[i].lambda);
    EXPECT_EQ(serial.points[i].analysis.stable,
              parallel.points[i].analysis.stable);
    EXPECT_EQ(serial.points[i].analysis.per_search,
              parallel.points[i].analysis.per_search);
    EXPECT_EQ(serial.points[i].analysis.per_insert,
              parallel.points[i].analysis.per_insert);
    EXPECT_EQ(serial.points[i].analysis.per_delete,
              parallel.points[i].analysis.per_delete);
  }

  std::ostringstream json_serial, json_parallel;
  runner::WriteSweepJson(json_serial, serial, /*include_timing=*/false);
  runner::WriteSweepJson(json_parallel, parallel, /*include_timing=*/false);
  EXPECT_EQ(json_serial.str(), json_parallel.str());
}

TEST(SweepDeterminismTest, TimingSectionIsOptIn) {
  ModelParams params =
      ModelParams::ForTree(4000, 13, 5.0, OperationMix{0.3, 0.5, 0.2});
  auto analyzer = MakeAnalyzer(Algorithm::kNaiveLockCoupling, params);
  runner::SweepRun run =
      runner::RunAnalyticalSweep(*analyzer, {0.01, 0.02}, 2);
  std::ostringstream bare, timed;
  runner::WriteSweepJson(bare, run, /*include_timing=*/false);
  runner::WriteSweepJson(timed, run, /*include_timing=*/true);
  EXPECT_EQ(bare.str().find("timing"), std::string::npos);
  EXPECT_NE(timed.str().find("\"timing\":{"), std::string::npos);
  EXPECT_NE(timed.str().find("\"wall_seconds\":"), std::string::npos);
}

}  // namespace
}  // namespace cbtree
