// The observability layer: metrics registry (sharded counters, gauges,
// timers), trace sinks, trace/metrics reconciliation against the simulator,
// and the concurrent trees' latch telemetry.
//
// Counting assertions are guarded by CBTREE_OBS_ENABLED so the suite also
// passes in a -DCBTREE_OBS=OFF build (where updates are no-ops).

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "ctree/ctree.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "runner/experiment.h"
#include "sim/simulator.h"

namespace cbtree {
namespace {

TEST(RegistryTest, CounterAccumulatesExactly) {
  obs::Registry registry;
  obs::Counter ops = registry.counter("ops");
  ops.Add();
  ops.Add(41);
  obs::Snapshot snapshot = registry.Read();
#if CBTREE_OBS_ENABLED
  EXPECT_EQ(snapshot.counters.at("ops"), 42u);
#else
  EXPECT_EQ(snapshot.counters.at("ops"), 0u);
#endif
}

TEST(RegistryTest, SameNameSharesTheCell) {
  obs::Registry registry;
  registry.counter("x").Add(1);
  registry.counter("x").Add(2);
#if CBTREE_OBS_ENABLED
  EXPECT_EQ(registry.Read().counters.at("x"), 3u);
#endif
}

TEST(RegistryTest, DefaultConstructedHandlesAreInert) {
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Timer timer;
  counter.Add(5);
  gauge.Set(7);
  timer.RecordNs(100);  // must not crash
}

TEST(RegistryTest, MultiThreadedCountsAreExactAfterJoin) {
  obs::Registry registry;
  obs::Counter ops = registry.counter("ops");
  obs::Timer lat = registry.timer("lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        ops.Add();
        lat.RecordNs(static_cast<uint64_t>(i % 1000));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  obs::Snapshot snapshot = registry.Read();
#if CBTREE_OBS_ENABLED
  EXPECT_EQ(snapshot.counters.at("ops"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snapshot.timers.at("lat").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snapshot.timers.at("lat").max_ns, 999u);
#endif
}

TEST(RegistryTest, ExitedThreadsRetireTheirShards) {
  obs::Registry registry;
  obs::Counter ops = registry.counter("ops");
  std::thread([&] { ops.Add(17); }).join();
  ops.Add(3);
#if CBTREE_OBS_ENABLED
  EXPECT_EQ(registry.Read().counters.at("ops"), 20u);
#endif
}

TEST(RegistryTest, TwoRegistriesAreIndependent) {
  obs::Registry a, b;
  obs::Counter ca = a.counter("n"), cb = b.counter("n");
  ca.Add(1);
  cb.Add(10);
  ca.Add(1);
#if CBTREE_OBS_ENABLED
  EXPECT_EQ(a.Read().counters.at("n"), 2u);
  EXPECT_EQ(b.Read().counters.at("n"), 10u);
#endif
}

TEST(RegistryTest, HandlesOutliveTheRegistry) {
  obs::Counter survivor;
  {
    obs::Registry registry;
    survivor = registry.counter("n");
    survivor.Add(1);
  }
  survivor.Add(1);  // registry is gone; must still be safe
}

TEST(RegistryTest, GaugeKeepsLastValue) {
  obs::Registry registry;
  obs::Gauge depth = registry.gauge("depth");
  depth.Set(4);
  depth.Set(-2);
#if CBTREE_OBS_ENABLED
  EXPECT_EQ(registry.Read().gauges.at("depth"), -2);
#else
  EXPECT_EQ(registry.Read().gauges.at("depth"), 0);
#endif
}

TEST(RegistryTest, TimerQuantilesBracketTheSamples) {
  obs::Registry registry;
  obs::Timer timer = registry.timer("t");
  for (int i = 0; i < 1000; ++i) timer.RecordNs(1000);  // all ~1us
  timer.RecordNs(1000000);  // one 1ms outlier
#if CBTREE_OBS_ENABLED
  obs::TimerSnapshot snapshot = registry.Read().timers.at("t");
  EXPECT_EQ(snapshot.count, 1001u);
  EXPECT_EQ(snapshot.max_ns, 1000000u);
  // p50 lands in the log2 bucket holding 1000ns: [512, 1024).
  EXPECT_GE(snapshot.quantile_ns(0.5), 512.0);
  EXPECT_LE(snapshot.quantile_ns(0.5), 1024.0);
  // No quantile exceeds the observed max.
  EXPECT_LE(snapshot.quantile_ns(0.999), 1000000.0);
  EXPECT_DOUBLE_EQ(snapshot.mean_ns(),
                   (1000.0 * 1000 + 1000000) / 1001.0);
#endif
}

TEST(RegistryTest, SnapshotJsonIsWellFormed) {
  obs::Registry registry;
  registry.counter("c").Add(3);
  registry.gauge("g").Set(-1);
  registry.timer("t").RecordNs(5);
  std::string json;
  registry.Read().AppendJson(&json);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
#if CBTREE_OBS_ENABLED
  EXPECT_NE(json.find("\"c\":3"), std::string::npos);
#endif
}

// ---------------------------------------------------------------------------
// Trace sinks
// ---------------------------------------------------------------------------

obs::TraceEvent MakeEvent(obs::TraceEventKind kind, uint64_t id,
                          bool measured) {
  obs::TraceEvent event;
  event.time = 1.5;
  event.kind = kind;
  event.id = id;
  event.what = "search";
  event.level = 2;
  event.node = 7;
  event.value = 0.25;
  event.measured = measured;
  return event;
}

TEST(TraceTest, JsonlRoundTripsThroughCountJsonlTrace) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(&out);
  sink.Record(MakeEvent(obs::TraceEventKind::kOpComplete, 1, true));
  sink.Record(MakeEvent(obs::TraceEventKind::kOpComplete, 2, false));
  sink.Record(MakeEvent(obs::TraceEventKind::kRestart, 3, true));
  sink.Record(MakeEvent(obs::TraceEventKind::kLinkCrossing, 4, true));
  sink.Record(MakeEvent(obs::TraceEventKind::kLockAcquire, 5, true));
  sink.Flush();
  std::istringstream in(out.str());
  obs::TraceTotals totals = obs::CountJsonlTrace(in);
  EXPECT_EQ(totals.lines, 5u);
  EXPECT_EQ(totals.completions, 1u);  // the unmeasured one is excluded
  EXPECT_EQ(totals.restarts, 1u);
  EXPECT_EQ(totals.link_crossings, 1u);
  EXPECT_EQ(totals.lock_acquires, 1u);
  // Every line is a self-contained JSON object.
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"kind\":"), std::string::npos);
  }
}

TEST(TraceTest, ChromeSinkEmitsOneJsonArray) {
  std::ostringstream out;
  {
    obs::ChromeTraceSink sink(&out);
    sink.Record(MakeEvent(obs::TraceEventKind::kOpArrive, 1, true));
    sink.Flush();  // mid-run flush must not close the array
    sink.Record(MakeEvent(obs::TraceEventKind::kOpComplete, 1, true));
    sink.Record(MakeEvent(obs::TraceEventKind::kLockRequest, 1, true));
  }  // destructor writes the terminator
  std::string trace = out.str();
  EXPECT_EQ(trace.front(), '[');
  EXPECT_EQ(trace[trace.find_last_not_of('\n')], ']');
  EXPECT_NE(trace.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  // Exactly one terminator.
  EXPECT_EQ(trace.find(']'), trace.rfind(']'));
}

TEST(TraceTest, ParseTraceFormat) {
  EXPECT_EQ(obs::ParseTraceFormat("jsonl"), obs::TraceFormat::kJsonl);
  EXPECT_EQ(obs::ParseTraceFormat("chrome"), obs::TraceFormat::kChrome);
  EXPECT_FALSE(obs::ParseTraceFormat("xml").has_value());
}

// ---------------------------------------------------------------------------
// Trace / SimMetrics reconciliation
// ---------------------------------------------------------------------------

class TraceConsistencyTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(TraceConsistencyTest, TraceTotalsMatchSimMetrics) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(&out);
  SimConfig config;
  config.algorithm = GetParam();
  config.lambda = 0.2;
  config.num_operations = 3000;
  config.warmup_operations = 300;
  config.num_items = 4000;
  config.seed = 7;
  config.trace = &sink;
  SimResult result = Simulator(config).Run();
  ASSERT_FALSE(result.saturated);
  std::istringstream in(out.str());
  obs::TraceTotals totals = obs::CountJsonlTrace(in);
  EXPECT_EQ(totals.completions, result.completed);
  EXPECT_EQ(totals.restarts, result.restarts);
  EXPECT_EQ(totals.link_crossings, result.link_crossings);
  EXPECT_GT(totals.lock_acquires, 0u);
  // Tracing never perturbs the run: the same config without a sink
  // produces the same statistics.
  SimConfig untraced = config;
  untraced.trace = nullptr;
  SimResult reference = Simulator(untraced).Run();
  EXPECT_EQ(reference.completed, result.completed);
  EXPECT_EQ(reference.restarts, result.restarts);
  EXPECT_EQ(reference.link_crossings, result.link_crossings);
  EXPECT_DOUBLE_EQ(reference.resp_all.mean(), result.resp_all.mean());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, TraceConsistencyTest,
                         ::testing::Values(Algorithm::kNaiveLockCoupling,
                                           Algorithm::kOptimisticDescent,
                                           Algorithm::kLinkType,
                                           Algorithm::kTwoPhaseLocking));

// ---------------------------------------------------------------------------
// Concurrent-tree latch telemetry
// ---------------------------------------------------------------------------

class LatchTelemetryTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(LatchTelemetryTest, AcquisitionsShowUpPerLevel) {
  auto tree = MakeConcurrentBTree(GetParam(), 8);
  for (int i = 0; i < 2000; ++i) tree->Insert(i * 7 % 5000, i);
  for (int i = 0; i < 2000; ++i) tree->Search(i * 7 % 5000);
  CTreeStats stats = tree->stats();
#if CBTREE_OBS_ENABLED
  ASSERT_FALSE(stats.latch_levels.empty());
  // Level 1 (the leaves) saw every insert's exclusive latch.
  const LatchLevelStats& leaves = stats.latch_levels.front();
  EXPECT_EQ(leaves.level, 1);
  EXPECT_GE(leaves.exclusive.acquisitions, 2000u);
  uint64_t total = 0;
  for (const LatchLevelStats& level : stats.latch_levels) {
    EXPECT_GT(level.level, 0);
    EXPECT_LE(level.shared.contended, level.shared.acquisitions);
    EXPECT_LE(level.exclusive.contended, level.exclusive.acquisitions);
    total += level.shared.acquisitions + level.exclusive.acquisitions;
  }
  EXPECT_GE(total, 4000u);
  // Single-threaded: nothing can have blocked.
  for (const LatchLevelStats& level : stats.latch_levels) {
    EXPECT_EQ(level.shared.contended, 0u);
    EXPECT_EQ(level.exclusive.contended, 0u);
  }
#else
  EXPECT_TRUE(stats.latch_levels.empty());
#endif
}

TEST_P(LatchTelemetryTest, ContendedWaitsAreTimedUnderThreads) {
  auto tree = MakeConcurrentBTree(GetParam(), 8);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5000; ++i) {
        int key = (t * 5000 + i) * 13 % 40000;
        if (i % 3 == 0) {
          tree->Search(key);
        } else if (i % 3 == 1) {
          tree->Insert(key, i);
        } else {
          tree->Delete(key);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  tree->CheckInvariants();
  CTreeStats stats = tree->stats();
#if CBTREE_OBS_ENABLED
  ASSERT_FALSE(stats.latch_levels.empty());
  for (const LatchLevelStats& level : stats.latch_levels) {
    // Wait timers only record contended acquisitions.
    EXPECT_EQ(level.shared.wait.count, level.shared.contended);
    EXPECT_EQ(level.exclusive.wait.count, level.exclusive.contended);
  }
#endif
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, LatchTelemetryTest,
                         ::testing::Values(Algorithm::kNaiveLockCoupling,
                                           Algorithm::kOptimisticDescent,
                                           Algorithm::kLinkType,
                                           Algorithm::kTwoPhaseLocking));

// ---------------------------------------------------------------------------
// Runner job events
// ---------------------------------------------------------------------------

TEST(RunnerTraceTest, JobEventsCoverEveryGridJob) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(&out);
  SimConfig base;
  base.algorithm = Algorithm::kLinkType;
  base.lambda = 0.15;
  base.num_operations = 800;
  base.warmup_operations = 80;
  base.num_items = 2000;
  std::vector<std::vector<SimConfig>> grid(2);
  for (int p = 0; p < 2; ++p) {
    for (int s = 0; s < 2; ++s) {
      SimConfig config = base;
      config.seed = 10 * p + s + 1;
      grid[p].push_back(config);
    }
  }
  runner::SimGridRun run = runner::RunSimGrid(grid, /*jobs=*/2, &sink);
  EXPECT_EQ(run.points.size(), 2u);
  std::istringstream in(out.str());
  std::string line;
  int begins = 0, ends = 0;
  while (std::getline(in, line)) {
    if (line.find("\"kind\":\"job_begin\"") != std::string::npos) ++begins;
    if (line.find("\"kind\":\"job_end\"") != std::string::npos) ++ends;
  }
  EXPECT_EQ(begins, 4);
  EXPECT_EQ(ends, 4);
}

TEST(RunnerTraceTest, MergedPointPoolsSeedDistributions) {
  SimConfig base;
  base.algorithm = Algorithm::kNaiveLockCoupling;
  base.lambda = 0.15;
  base.num_operations = 1000;
  base.warmup_operations = 100;
  base.num_items = 2000;
  std::vector<std::vector<SimConfig>> grid(1);
  for (int s = 0; s < 3; ++s) {
    SimConfig config = base;
    config.seed = s + 1;
    grid[0].push_back(config);
  }
  runner::SimGridRun run = runner::RunSimGrid(grid, /*jobs=*/1);
  ASSERT_EQ(run.points.size(), 1u);
  const runner::SimPoint& point = run.points.front();
  ASSERT_TRUE(point.ok);
  // 3 seeds x 900 measured completions, pooled.
  EXPECT_EQ(point.completed, 2700u);
  EXPECT_EQ(point.responses.count(), 2700u);
  EXPECT_GT(point.active_ops.Average(0.0), 0.0);
  double p50 = point.responses.Quantile(0.5);
  double p99 = point.responses.Quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p99, p50);
}

}  // namespace
}  // namespace cbtree
