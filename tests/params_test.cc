#include <gtest/gtest.h>

#include "core/params.h"

namespace cbtree {
namespace {

TEST(CostModelTest, PaperConfiguration) {
  CostModel cost;  // defaults: h=5, 2 in-memory levels, D=5
  // Levels 5 and 4 in memory, 3..1 on disk.
  EXPECT_DOUBLE_EQ(cost.Se(5), 1.0);
  EXPECT_DOUBLE_EQ(cost.Se(4), 1.0);
  EXPECT_DOUBLE_EQ(cost.Se(3), 5.0);
  EXPECT_DOUBLE_EQ(cost.Se(2), 5.0);
  EXPECT_DOUBLE_EQ(cost.Se(1), 5.0);
  // M = 2x leaf search, Sp = 3x search.
  EXPECT_DOUBLE_EQ(cost.M(), 10.0);
  EXPECT_DOUBLE_EQ(cost.Sp(1), 15.0);
  EXPECT_DOUBLE_EQ(cost.Sp(5), 3.0);
}

TEST(OperationMixTest, DeleteShareOfUpdates) {
  OperationMix mix{0.3, 0.5, 0.2};
  EXPECT_DOUBLE_EQ(mix.update_fraction(), 0.7);
  EXPECT_NEAR(mix.delete_share_of_updates(), 2.0 / 7.0, 1e-12);
}

TEST(StructureParamsTest, PaperTreeShape) {
  // 40,000 items, N=13: the paper reports height 5 and a root of ~6 children.
  StructureParams st =
      MakeStructureParams(40000, 13, OperationMix{0.3, 0.5, 0.2});
  EXPECT_EQ(st.height, 5);
  EXPECT_NEAR(st.E(5), 6.2, 0.5);
  for (int level = 2; level < 5; ++level) {
    EXPECT_NEAR(st.E(level), 0.69 * 13, 1e-9);
  }
}

TEST(StructureParamsTest, Corollary1Probabilities) {
  OperationMix mix{0.3, 0.5, 0.2};
  StructureParams st = MakeStructureParams(40000, 13, mix);
  double q = 0.2 / 0.7;
  EXPECT_NEAR(st.PrF(1), (1 - 2 * q) / ((1 - q) * 0.68 * 13), 1e-12);
  EXPECT_NEAR(st.PrF(2), 1.0 / (0.69 * 13), 1e-12);
  EXPECT_EQ(st.PrEm(1), 0.0);
  // Pure inserts: Pr[F(1)] = 1/(.68 N).
  StructureParams pure =
      MakeStructureParams(40000, 13, OperationMix{0.5, 0.5, 0.0});
  EXPECT_NEAR(pure.PrF(1), 1.0 / (0.68 * 13), 1e-12);
}

TEST(StructureParamsTest, PrFProduct) {
  StructureParams st =
      MakeStructureParams(40000, 13, OperationMix{0.3, 0.5, 0.2});
  EXPECT_DOUBLE_EQ(st.PrFProduct(0), 1.0);
  EXPECT_DOUBLE_EQ(st.PrFProduct(2), st.PrF(1) * st.PrF(2));
}

TEST(StructureParamsTest, LargerNodesShrinkHeight) {
  OperationMix mix{0.3, 0.5, 0.2};
  StructureParams small = MakeStructureParams(40000, 13, mix);
  StructureParams large = MakeStructureParams(40000, 59, mix);
  EXPECT_LT(large.height, small.height);
  // The paper's Figure 16 configuration: N=59 gives a 4-level tree... with
  // 40,000 items and fanout .69*59 = 40.7 the height is 3; the paper's 4
  // levels correspond to its own item count. Just check monotonicity and
  // plausibility here.
  EXPECT_GE(large.height, 2);
}

TEST(ModelParamsTest, PaperDefaultIsConsistent) {
  ModelParams params = ModelParams::PaperDefault();
  params.Validate();
  EXPECT_EQ(params.height(), 5);
  EXPECT_EQ(params.structure.max_node_size, 13);
  EXPECT_DOUBLE_EQ(params.cost.disk_cost, 5.0);
}

TEST(ModelParamsTest, ForTreeDerivesHeightFromStructure) {
  ModelParams params = ModelParams::ForTree(1000000, 100, 10.0,
                                            OperationMix{0.3, 0.5, 0.2});
  EXPECT_EQ(params.cost.height, params.structure.height);
  // 1e6/69 = 14.5k leaves, /69 = 210, /69 = 3.04, /69 < 1: the root sits at
  // level 4 with ~3 children.
  EXPECT_EQ(params.height(), 4);
}

}  // namespace
}  // namespace cbtree
