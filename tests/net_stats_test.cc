// Tests for the live-serving observability plane: snapshot diffing and
// retention (obs/snapshot), the kStats admin frame over a live socket, the
// periodic interval ticker's exact telescoping reconciliation under
// concurrent load, the per-shard stage-histogram sum identity, sampled
// stage waterfalls, and the Prometheus text listener. The OBS=OFF branches
// prove the plane compiles out: kStats still answers (functional atomics)
// while the registry-backed machinery reports nothing.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "ctree/ctree.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/registry.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace cbtree {
namespace net {
namespace {

ServerOptions LoopbackOptions(Algorithm algorithm) {
  ServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;  // ephemeral
  options.algorithm = algorithm;
  options.workers = 4;
  options.drain_timeout_ms = 10000;
  return options;
}

// ---------------------------------------------------------------------------
// obs::Subtract semantics.

TEST(SnapshotSubtractTest, CountersDiffAndClampGaugesKeepCurrent) {
  obs::Snapshot prev;
  prev.counters["a"] = 10;
  prev.counters["shrank"] = 100;
  prev.counters["prev_only"] = 7;
  prev.gauges["g"] = 42;
  obs::Snapshot cur;
  cur.counters["a"] = 25;
  cur.counters["shrank"] = 90;  // racy read: must clamp, never wrap
  cur.counters["cur_only"] = 3;
  cur.gauges["g"] = -5;

  const obs::Snapshot delta = obs::Subtract(cur, prev);
  EXPECT_EQ(delta.counters.at("a"), 15u);
  EXPECT_EQ(delta.counters.at("shrank"), 0u);
  EXPECT_EQ(delta.counters.at("cur_only"), 3u);
  EXPECT_EQ(delta.counters.count("prev_only"), 0u);  // dropped, not negative
  EXPECT_EQ(delta.gauges.at("g"), -5);               // instantaneous
}

TEST(SnapshotSubtractTest, TimersDiffCountTotalBucketsButKeepCurrentMax) {
  obs::TimerSnapshot prev_t;
  prev_t.count = 4;
  prev_t.total_ns = 1000;
  prev_t.max_ns = 900;
  prev_t.buckets.assign(obs::kTimerBuckets, 0);
  prev_t.buckets[5] = 4;
  obs::TimerSnapshot cur_t;
  cur_t.count = 10;
  cur_t.total_ns = 5000;
  cur_t.max_ns = 1200;
  cur_t.buckets.assign(obs::kTimerBuckets, 0);
  cur_t.buckets[5] = 7;
  cur_t.buckets[8] = 3;

  obs::Snapshot prev;
  prev.timers["t"] = prev_t;
  obs::Snapshot cur;
  cur.timers["t"] = cur_t;

  const obs::Snapshot delta = obs::Subtract(cur, prev);
  const obs::TimerSnapshot& d = delta.timers.at("t");
  EXPECT_EQ(d.count, 6u);
  EXPECT_EQ(d.total_ns, 4000u);
  EXPECT_EQ(d.max_ns, 1200u);  // high-water mark cannot be diffed
  EXPECT_EQ(d.buckets[5], 3u);
  EXPECT_EQ(d.buckets[8], 3u);
}

// ---------------------------------------------------------------------------
// SnapshotRing retention and telescoping.

TEST(SnapshotRingTest, FirstRecordDiffsAgainstZero) {
  obs::SnapshotRing ring(8);
  obs::Snapshot s;
  s.counters["c"] = 17;
  const obs::IntervalSnapshot interval = ring.Record(0.5, s);
  EXPECT_EQ(interval.seq, 0u);
  EXPECT_EQ(interval.t_begin_s, 0.0);
  EXPECT_EQ(interval.t_end_s, 0.5);
  EXPECT_EQ(interval.delta.counters.at("c"), 17u);
  EXPECT_EQ(interval.cumulative.counters.at("c"), 17u);
}

TEST(SnapshotRingTest, EvictsOldestAndCountsDrops) {
  obs::SnapshotRing ring(4);
  for (int i = 1; i <= 10; ++i) {
    obs::Snapshot s;
    s.counters["c"] = static_cast<uint64_t>(i) * 10;
    ring.Record(static_cast<double>(i), s);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<obs::IntervalSnapshot> history = ring.History();
  ASSERT_EQ(history.size(), 4u);
  // Oldest first, contiguous tail of the sequence.
  for (size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(history[i].seq, 6u + i);
    EXPECT_EQ(history[i].delta.counters.at("c"), 10u);  // monotone steps
  }
  EXPECT_EQ(ring.last().seq, 9u);
}

TEST(SnapshotRingTest, IntervalDeltasTelescopeToCumulativeTotals) {
  obs::SnapshotRing ring(64);
  uint64_t cum = 0;
  for (int i = 0; i < 20; ++i) {
    cum += static_cast<uint64_t>(i) * 3 + 1;  // irregular increments
    obs::Snapshot s;
    s.counters["c"] = cum;
    ring.Record(static_cast<double>(i + 1), s);
  }
  uint64_t sum = 0;
  for (const obs::IntervalSnapshot& interval : ring.History()) {
    sum += interval.delta.counters.at("c");
  }
  EXPECT_EQ(sum, cum);  // exact, not approximate
}

// ---------------------------------------------------------------------------
// kStats admin frame over a live socket.

TEST(NetStatsTest, StatsRoundTripJsonAndTable) {
  Server server(LoopbackOptions(Algorithm::kLinkType));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  EXPECT_EQ(client.Insert(1, 10), Status::kInserted);
  EXPECT_EQ(client.Search(1), 10);

  const std::optional<std::string> json = client.Stats(StatsFormat::kJson);
  ASSERT_TRUE(json.has_value());
  EXPECT_NE(json->find("\"totals\""), std::string::npos);
  EXPECT_NE(json->find("\"completed\":2"), std::string::npos);
  EXPECT_NE(json->find("\"build\""), std::string::npos);
  EXPECT_NE(json->find("\"shards_detail\""), std::string::npos);
#if CBTREE_OBS_ENABLED
  EXPECT_NE(json->find("\"obs\":true"), std::string::npos);
#else
  EXPECT_NE(json->find("\"obs\":false"), std::string::npos);
#endif

  const std::optional<std::string> table = client.Stats(StatsFormat::kTable);
  ASSERT_TRUE(table.has_value());
  EXPECT_NE(table->find("cbtree serve"), std::string::npos);
  EXPECT_NE(table->find("build "), std::string::npos);
  EXPECT_NE(table->find("shard"), std::string::npos);

  // The admin plane still answers data requests afterwards on the same
  // connection.
  EXPECT_EQ(client.Search(1), 10);

  client.Close();
  server.Shutdown();
  const ServerStats stats = server.stats();
  // kStats frames are out-of-band: counted separately, absent from the
  // data-path accounting identity.
  EXPECT_EQ(stats.stats_requests, 2u);
  EXPECT_EQ(stats.requests_received, 3u);
  EXPECT_EQ(stats.completed, 3u);
  uint64_t loop_stats = 0;
  for (const LoopServerStats& loop : stats.loops) {
    loop_stats += loop.stats_requests;
  }
  EXPECT_EQ(loop_stats, stats.stats_requests);
}

// ---------------------------------------------------------------------------
// Interval reconciliation under concurrent load.

TEST(NetStatsTest, IntervalDeltasReconcileExactlyWithFinalTotals) {
  ServerOptions options = LoopbackOptions(Algorithm::kLinkType);
  options.shards = 2;
  options.stats_interval_s = 0.02;
  options.stats_ring = 4096;  // retain every interval of this short run
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      std::string thread_error;
      ASSERT_TRUE(
          client.Connect("127.0.0.1", server.port(), &thread_error))
          << thread_error;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Key key = static_cast<Key>(t * kOpsPerThread + i + 1);
        ASSERT_TRUE(client.Insert(key, key).has_value());
        if (i % 16 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      client.Close();
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.Shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);

#if CBTREE_OBS_ENABLED
  const std::vector<obs::IntervalSnapshot> history = server.history();
  ASSERT_FALSE(history.empty());

  // Sequence numbers and timestamps are strictly increasing; cumulative
  // counters never decrease.
  std::map<std::string, uint64_t> prev_counters;
  double prev_end = 0.0;
  for (size_t i = 0; i < history.size(); ++i) {
    if (i > 0) {
      EXPECT_EQ(history[i].seq, history[i - 1].seq + 1);
      EXPECT_EQ(history[i].t_begin_s, history[i - 1].t_end_s);
    }
    EXPECT_GE(history[i].t_end_s, prev_end);
    prev_end = history[i].t_end_s;
    for (const auto& [name, value] : history[i].cumulative.counters) {
      auto it = prev_counters.find(name);
      if (it != prev_counters.end()) {
        EXPECT_GE(value, it->second) << name;
      }
      prev_counters[name] = value;
    }
  }

  // The reconciliation identity: Shutdown records a final post-drain
  // interval, so for EVERY counter the interval deltas sum bit-exactly to
  // the final cumulative total (the ring kept every interval).
  ASSERT_EQ(history.front().seq, 0u);
  const obs::Snapshot& final_cum = history.back().cumulative;
  std::map<std::string, uint64_t> delta_sums;
  for (const obs::IntervalSnapshot& interval : history) {
    for (const auto& [name, value] : interval.delta.counters) {
      delta_sums[name] += value;
    }
  }
  for (const auto& [name, total] : final_cum.counters) {
    EXPECT_EQ(delta_sums[name], total) << name;
  }
  // And the observability plane agrees with the functional atomics.
  EXPECT_EQ(final_cum.counters.at("srv.completed"), stats.completed);
  EXPECT_EQ(final_cum.counters.at("srv.requests"), stats.requests_received);
#else
  // OBS=OFF compiles the ticker out: no intervals despite the option.
  EXPECT_TRUE(server.history().empty());
#endif
}

// ---------------------------------------------------------------------------
// Stage-histogram sum identity.

#if CBTREE_OBS_ENABLED
TEST(NetStatsTest, StageHistogramsTelescopeToEndToEndLatency) {
  ServerOptions options = LoopbackOptions(Algorithm::kLinkType);
  options.shards = 2;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  constexpr uint64_t kOps = 300;
  for (uint64_t i = 1; i <= kOps; ++i) {
    ASSERT_TRUE(client.Insert(static_cast<Key>(i), i).has_value());
  }
  client.Close();
  server.Shutdown();

  const obs::Snapshot snapshot = server.MergedSnapshot();
  const char* kStages[] = {"admit", "queue", "batch", "tree", "buffer",
                           "flush"};
  uint64_t total_count = 0;
  for (int s = 0; s < server.num_shards(); ++s) {
    const std::string suffix = "_ns.s" + std::to_string(s);
    const obs::TimerSnapshot& total =
        snapshot.timers.at("stage.total" + suffix);
    uint64_t stage_sum = 0;
    for (const char* stage : kStages) {
      const obs::TimerSnapshot& t =
          snapshot.timers.at(std::string("stage.") + stage + suffix);
      // A clean run flushes every response, so every stage saw every
      // request of this shard.
      EXPECT_EQ(t.count, total.count) << stage << " shard " << s;
      stage_sum += t.total_ns;
    }
    // The stages partition [admit, flushed] with shared endpoints, so their
    // masses telescope to the end-to-end total exactly, in integer ns.
    EXPECT_EQ(stage_sum, total.total_ns) << "shard " << s;
    total_count += total.count;
  }
  EXPECT_EQ(total_count, kOps);
}

// ---------------------------------------------------------------------------
// Sampled stage waterfalls.

class CapturingTraceSink : public obs::TraceSink {
 public:
  void Record(const obs::TraceEvent& event) override {
    MutexLock lock(&mutex_);
    events_.push_back(event);
  }
  std::vector<obs::TraceEvent> events() const {
    MutexLock lock(&mutex_);
    return events_;
  }

 private:
  mutable Mutex mutex_;
  std::vector<obs::TraceEvent> events_ CBTREE_GUARDED_BY(mutex_);
};

TEST(NetStatsTest, TraceSampleEmitsOneWaterfallPerSampledRequest) {
  CapturingTraceSink sink;
  ServerOptions options = LoopbackOptions(Algorithm::kLinkType);
  options.trace = &sink;
  options.trace_sample = 1;  // sample every admitted request
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  constexpr uint64_t kOps = 20;
  for (uint64_t i = 1; i <= kOps; ++i) {
    ASSERT_TRUE(client.Insert(static_cast<Key>(i), i).has_value());
  }
  client.Close();
  server.Shutdown();

  const std::set<std::string> kStages = {"admit",  "queue", "batch",
                                         "tree",   "buffer", "flush"};
  std::map<uint64_t, int> begins;
  std::map<uint64_t, int> ends;
  for (const obs::TraceEvent& event : sink.events()) {
    if (event.kind == obs::TraceEventKind::kStageBegin) {
      EXPECT_EQ(kStages.count(event.what), 1u) << event.what;
      ++begins[event.id];
    } else if (event.kind == obs::TraceEventKind::kStageEnd) {
      EXPECT_EQ(kStages.count(event.what), 1u) << event.what;
      EXPECT_GE(event.value, 0.0);
      ++ends[event.id];
    }
  }
  // Every request sampled: one full waterfall (6 begin/end pairs) each.
  EXPECT_EQ(begins.size(), kOps);
  EXPECT_EQ(ends.size(), kOps);
  for (const auto& [id, count] : begins) EXPECT_EQ(count, 6) << "id " << id;
  for (const auto& [id, count] : ends) EXPECT_EQ(count, 6) << "id " << id;
}
#endif  // CBTREE_OBS_ENABLED

// ---------------------------------------------------------------------------
// Prometheus text listener.

#if CBTREE_OBS_ENABLED
std::string HttpGet(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return {};
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return {};
  }
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  (void)!write(fd, request, sizeof(request) - 1);
  std::string out;
  char buffer[4096];
  for (;;) {
    const ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  return out;
}

TEST(NetStatsTest, PrometheusListenerServesMergedSnapshot) {
  ServerOptions options = LoopbackOptions(Algorithm::kLinkType);
  options.stats_port = 0;  // ephemeral exposition port
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.stats_port(), 0);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  EXPECT_EQ(client.Insert(5, 50), Status::kInserted);

  const std::string body = HttpGet(server.stats_port());
  EXPECT_NE(body.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(body.find("cbtree_srv_completed_total"), std::string::npos);
  EXPECT_NE(body.find("# TYPE"), std::string::npos);

  client.Close();
  server.Shutdown();
}
#else   // !CBTREE_OBS_ENABLED
TEST(NetStatsTest, StatsListenerCompiledOutUnderObsOff) {
  ServerOptions options = LoopbackOptions(Algorithm::kLinkType);
  options.stats_port = 0;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  EXPECT_EQ(server.stats_port(), -1);  // listener never opened
  server.Shutdown();
}
#endif  // CBTREE_OBS_ENABLED

}  // namespace
}  // namespace net
}  // namespace cbtree
