// Tests for the epoch-based reclamation component (base/epoch.h).
//
// The deterministic cases pin/unpin epochs from the test thread and check
// exactly when retired objects are freed; the torture test hammers one
// manager from eight threads and relies on ASan/TSAN (the sanitizer suites
// run this binary) to catch use-after-free or racy slot handling.

#include "base/epoch.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "base/thread_annotations.h"
#include "gtest/gtest.h"

namespace cbtree {
namespace {

// A retired object that flips a flag when its deleter runs.
struct Tracked {
  explicit Tracked(std::atomic<int>* counter) : freed(counter) {}
  ~Tracked() { freed->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>* freed;
};

// The nested-guard helpers below deliberately re-acquire the epoch
// capability on one thread — the exact re-entrancy EpochGuard supports but
// Clang's thread-safety analysis does not model — so they opt out of the
// analysis explicitly.

/// Retires under a nested guard, then checks the outer guard still pins.
void RetireUnderNestedGuards(EpochManager* mgr, std::atomic<int>* freed)
    CBTREE_NO_THREAD_SAFETY_ANALYSIS {
  EpochGuard outer(mgr);
  {
    EpochGuard inner(mgr);
    mgr->RetireObject(new Tracked(freed));
  }
  // Inner exit must not clear the pin: the outer guard still runs.
  EXPECT_EQ(mgr->ReclaimQuiesced(), 0u);
  EXPECT_EQ(freed->load(), 0);
}

TEST(EpochTest, RetireWithoutGuardsFreesImmediately) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  uint64_t n = mgr.RetireObject(new Tracked(&freed));
  // No thread pins an epoch, so the retire's own reclaim pass frees it.
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(freed.load(), 1);
  EpochStats stats = mgr.stats();
  EXPECT_EQ(stats.retired, 1u);
  EXPECT_EQ(stats.freed, 1u);
  EXPECT_EQ(stats.pending, 0u);
}

TEST(EpochTest, RetireUnderActiveGuardIsDeferred) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  {
    EpochGuard guard(&mgr);
    // The guard pins the pre-retire epoch; the object must not be freed
    // while it is in scope, no matter how often reclamation runs.
    EXPECT_EQ(mgr.RetireObject(new Tracked(&freed)), 0u);
    EXPECT_EQ(freed.load(), 0);
    EXPECT_EQ(mgr.Advance(), 0u);
    EXPECT_EQ(mgr.Advance(), 0u);
    EXPECT_EQ(freed.load(), 0);
    EXPECT_EQ(mgr.stats().pending, 1u);
  }
  // Guard exited: the next reclaim frees it.
  EXPECT_EQ(mgr.ReclaimQuiesced(), 1u);
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(mgr.stats().pending, 0u);
}

TEST(EpochTest, GuardEnteredAfterRetireDoesNotBlockReclaim) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  mgr.RetireObject(new Tracked(&freed));
  // The retire already freed it (no guards), but make the ordering point
  // explicit: a guard taken *after* a retire pins a later epoch and can
  // never hold back that retire.
  std::atomic<int> freed2{0};
  {
    EpochGuard outer(&mgr);
    mgr.RetireObject(new Tracked(&freed2));
  }
  {
    EpochGuard late(&mgr);
    EXPECT_EQ(mgr.ReclaimQuiesced(), 1u);
    EXPECT_EQ(freed2.load(), 1);
  }
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, NestedGuardsPinUntilOutermostExit) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  RetireUnderNestedGuards(&mgr, &freed);
  EXPECT_EQ(mgr.ReclaimQuiesced(), 1u);
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, DestructorDrainsPendingRetires) {
  std::atomic<int> freed{0};
  {
    EpochManager mgr;
    {
      EpochGuard guard(&mgr);
      mgr.RetireObject(new Tracked(&freed));
      mgr.RetireObject(new Tracked(&freed));
    }
    EXPECT_EQ(freed.load(), 0);
    // Manager destruction (no active guards) frees everything pending.
  }
  EXPECT_EQ(freed.load(), 2);
}

TEST(EpochTest, StatsCountAdvances) {
  EpochManager mgr;
  uint64_t before = mgr.stats().advances;
  mgr.Advance();
  mgr.Advance();
  EXPECT_GE(mgr.stats().advances, before + 2);
  EXPECT_GT(mgr.epoch(), 0u);
}

TEST(EpochTest, RegisterUnregisterChurn) {
  // Threads claim a slot on first guard and release it at thread exit;
  // far more short-lived threads than kMaxThreads must cycle cleanly.
  EpochManager mgr;
  std::atomic<int> freed{0};
  constexpr int kWaves = 8;
  constexpr int kThreadsPerWave = 48;  // > kMaxThreads total across waves
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    threads.reserve(kThreadsPerWave);
    for (int t = 0; t < kThreadsPerWave; ++t) {
      threads.emplace_back([&mgr, &freed] {
        EpochGuard guard(&mgr);
        mgr.RetireObject(new Tracked(&freed));
      });
    }
    for (auto& th : threads) th.join();
  }
  mgr.ReclaimQuiesced();
  EXPECT_EQ(freed.load(), kWaves * kThreadsPerWave);
  EXPECT_EQ(mgr.stats().pending, 0u);
}

TEST(EpochTest, ThreadOutlivingManagerReleasesSlotSafely) {
  // A thread that registered with a manager and then idles must be able to
  // exit after the manager is destroyed (the slot array is shared-owned).
  std::atomic<bool> registered{false};
  std::atomic<bool> manager_gone{false};
  std::thread straggler;
  {
    EpochManager mgr;
    straggler = std::thread([&] {
      { EpochGuard guard(&mgr); }
      registered.store(true);
      while (!manager_gone.load()) std::this_thread::yield();
    });
    while (!registered.load()) std::this_thread::yield();
  }
  manager_gone.store(true);
  straggler.join();  // must not crash touching the freed manager's slots
}

struct Payload {
  std::atomic<uint64_t> value{0};
};

/// Guarded read of `*a`, plus a read of `*b` (when non-null) under a
/// deliberately nested guard.
uint64_t NestedGuardedRead(EpochManager* mgr, std::atomic<Payload*>* a,
                           std::atomic<Payload*>* b)
    CBTREE_NO_THREAD_SAFETY_ANALYSIS {
  EpochGuard guard(mgr);
  Payload* p = a->load(std::memory_order_acquire);
  uint64_t v = p->value.load(std::memory_order_relaxed);
  if (b != nullptr) {
    EpochGuard nested(mgr);
    Payload* q = b->load(std::memory_order_acquire);
    v += q->value.load(std::memory_order_relaxed);
  }
  return v;
}

// Eight threads alternate guarded "reads" of a shared pointer set with
// retires of random members. Sanitizers verify no freed object is ever
// dereferenced inside a guard.
TEST(EpochTortureTest, ConcurrentGuardsAndRetires) {
  EpochManager mgr;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  constexpr int kSlots = 64;

  // Shared table of live objects; writers swap entries out and retire the
  // old one, readers dereference whatever they see under a guard.
  std::atomic<Payload*> table[kSlots];
  for (auto& p : table) p.store(new Payload());

  std::atomic<uint64_t> checksum{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1);
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      for (int i = 0; i < kOpsPerThread; ++i) {
        int slot = static_cast<int>(next() % kSlots);
        if (next() % 4 == 0) {
          // Writer: install a fresh object, retire the old one. The old
          // object stays valid for every guard active at the swap.
          Payload* fresh = new Payload();
          fresh->value.store(next(), std::memory_order_relaxed);
          Payload* old = table[slot].exchange(fresh);
          mgr.RetireObject(old);
        } else {
          // Reader: guarded dereference, possibly nested.
          std::atomic<Payload*>* second =
              next() % 8 == 0 ? &table[(slot + 1) % kSlots] : nullptr;
          uint64_t v = NestedGuardedRead(&mgr, &table[slot], second);
          checksum.fetch_add(v, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EpochStats stats = mgr.stats();
  EXPECT_GT(stats.retired, 0u);
  EXPECT_EQ(mgr.ReclaimQuiesced() + stats.freed, mgr.stats().freed);
  EXPECT_EQ(mgr.stats().pending, 0u);
  for (auto& p : table) delete p.load();
}

}  // namespace
}  // namespace cbtree
