// Regression and internal-consistency tests of the simulator: the
// lock-manager reentrancy bug class, per-level wait accounting against the
// model, the closed-system mode, and buffer/recovery interactions.

#include <gtest/gtest.h>

#include <cmath>

#include "core/analyzer.h"
#include "sim/lock_manager.h"
#include "sim/simulator.h"

namespace cbtree {
namespace {

// Regression: a grant callback that synchronously releases the very lock it
// was granted (Optimistic Descent's unsafe-leaf path, Link-type crossings)
// re-enters the lock manager mid-release; this used to invalidate the outer
// frame's iterator. The callback below also immediately requests other
// nodes, forcing rehashes.
TEST(LockManagerReentrancyTest, SynchronousReleaseInsideGrant) {
  double now = 0.0;
  LockManager locks([&now] { return now; });
  int follow_ups = 0;
  locks.Request(1, LockMode::kWrite, 100, [] {});
  // Queue ten ops that, when granted, instantly release node 1 and touch a
  // fresh node each (growing the map).
  for (OpId op = 1; op <= 10; ++op) {
    locks.Request(1, LockMode::kWrite, op, [&, op] {
      locks.Release(1, op);
      locks.Request(1000 + op, LockMode::kRead, op,
                    [&follow_ups] { ++follow_ups; });
    });
  }
  locks.Release(1, 100);  // cascades through all ten
  EXPECT_EQ(follow_ups, 10);
  for (OpId op = 1; op <= 10; ++op) {
    EXPECT_TRUE(locks.Holds(1000 + op, op));
    locks.Release(1000 + op, op);
  }
  EXPECT_EQ(locks.total_held(), 0u);
}

TEST(LockManagerReentrancyTest, ReaderBatchWithSynchronousReleases) {
  double now = 0.0;
  LockManager locks([&now] { return now; });
  locks.Request(5, LockMode::kWrite, 99, [] {});
  int granted = 0;
  for (OpId op = 1; op <= 8; ++op) {
    locks.Request(5, LockMode::kRead, op, [&, op] {
      ++granted;
      locks.Release(5, op);  // reader releases within its own grant
    });
  }
  locks.Release(5, 99);
  EXPECT_EQ(granted, 8);
  EXPECT_EQ(locks.total_held(), 0u);
}

SimConfig BaseConfig(Algorithm algorithm) {
  SimConfig config;
  config.algorithm = algorithm;
  config.mix = OperationMix{0.3, 0.5, 0.2};
  config.num_operations = 8000;
  config.warmup_operations = 800;
  config.num_items = 4000;
  config.seed = 1;
  return config;
}

TEST(SimInternalsTest, PerLevelLockWaitsTrackModel) {
  SimConfig config = BaseConfig(Algorithm::kNaiveLockCoupling);
  config.lambda = 0.06;
  Simulator sim(config);
  SimResult result = sim.Run();
  ASSERT_FALSE(result.saturated);
  ModelParams params = ModelParams::ForTree(4000, 13, 5.0, config.mix);
  auto analyzer = MakeAnalyzer(Algorithm::kNaiveLockCoupling, params);
  AnalysisResult analysis = analyzer->Analyze(config.lambda);
  ASSERT_TRUE(analysis.stable);
  int h = params.height();
  // Per-level waits are the roughest part of the approximation (the paper
  // validates response times, which agree much tighter — see
  // sim_vs_model_test). Require the same order of magnitude at the root and
  // the same root-dominates-leaves ordering in both views.
  ASSERT_GT(result.lock_wait_w[h].count(), 100u);
  double ratio = result.lock_wait_w[h].mean() / analysis.levels[h].wait_w;
  EXPECT_GT(ratio, 1.0 / 3.0);
  EXPECT_LT(ratio, 3.0);
  EXPECT_LT(result.lock_wait_w[1].mean(), result.lock_wait_w[h].mean());
  EXPECT_LT(analysis.levels[1].wait_w, analysis.levels[h].wait_w);
}

TEST(SimInternalsTest, ClosedSystemRunsExactPopulation) {
  SimConfig config = BaseConfig(Algorithm::kOptimisticDescent);
  config.closed_population = 8;
  config.think_time = 0.0;
  config.num_operations = 4000;
  config.warmup_operations = 400;
  SimResult result = Simulator(config).Run();
  EXPECT_FALSE(result.saturated);
  EXPECT_EQ(result.completed, 3600u);
  // With zero think time the in-flight population sits at the MPL.
  EXPECT_NEAR(result.mean_active_ops, 8.0, 0.5);
  EXPECT_LE(result.max_active_ops, 8u);
}

TEST(SimInternalsTest, ClosedThroughputPlateausAtOpenMax) {
  ModelParams params = ModelParams::ForTree(4000, 13, 5.0,
                                            OperationMix{0.3, 0.5, 0.2});
  auto analyzer = MakeAnalyzer(Algorithm::kNaiveLockCoupling, params);
  double open_max = analyzer->MaxThroughput();
  SimConfig config = BaseConfig(Algorithm::kNaiveLockCoupling);
  config.closed_population = 64;  // far past the knee
  SimResult result = Simulator(config).Run();
  ASSERT_FALSE(result.saturated);
  EXPECT_NEAR(result.throughput / open_max, 1.0, 0.35);
}

TEST(SimInternalsTest, ClosedThroughputMonotoneInPopulation) {
  double last = 0.0;
  for (uint64_t mpl : {1u, 4u, 16u}) {
    SimConfig config = BaseConfig(Algorithm::kLinkType);
    config.closed_population = mpl;
    config.num_operations = 4000;
    config.warmup_operations = 400;
    SimResult result = Simulator(config).Run();
    ASSERT_FALSE(result.saturated);
    EXPECT_GT(result.throughput, last) << "mpl " << mpl;
    last = result.throughput;
  }
}

TEST(SimInternalsTest, ThinkTimeReducesOfferedLoad) {
  SimConfig busy = BaseConfig(Algorithm::kNaiveLockCoupling);
  busy.closed_population = 16;
  busy.think_time = 0.0;
  busy.num_operations = 4000;
  busy.warmup_operations = 400;
  SimConfig idle = busy;
  idle.think_time = 200.0;
  SimResult r_busy = Simulator(busy).Run();
  SimResult r_idle = Simulator(idle).Run();
  EXPECT_LT(r_idle.throughput, r_busy.throughput);
  EXPECT_LT(r_idle.resp_all.mean(), r_busy.resp_all.mean())
      << "less contention with thinking terminals";
}

TEST(SimInternalsTest, BufferPoolComposesWithRecovery) {
  SimConfig config = BaseConfig(Algorithm::kOptimisticDescent);
  config.lambda = 0.03;
  config.buffer_pool_nodes = 100;
  config.recovery = {RecoveryPolicy::kLeafOnly, 50.0};
  config.num_operations = 4000;
  config.warmup_operations = 400;
  SimResult result = Simulator(config).Run();
  EXPECT_FALSE(result.saturated);
  EXPECT_GT(result.buffer_hit_rate, 0.0);
  EXPECT_LT(result.buffer_hit_rate, 1.0);
}

TEST(SimInternalsTest, TwoPhaseWithNaiveRecoveryStillCompletes) {
  SimConfig config = BaseConfig(Algorithm::kTwoPhaseLocking);
  config.lambda = 0.01;
  config.recovery = {RecoveryPolicy::kNaive, 20.0};
  config.num_operations = 3000;
  config.warmup_operations = 300;
  SimResult result = Simulator(config).Run();
  EXPECT_FALSE(result.saturated);
  EXPECT_EQ(result.completed, 2700u);
}

}  // namespace
}  // namespace cbtree
