// Statistical verification of the load model itself: the drive client (and
// the in-process workload) shape their traffic with SampleZipfIndex and
// per-connection exponential arrival streams, so this file checks those
// generators against their closed-form distributions — a broken sampler
// would silently invalidate every throughput/latency curve downstream.
//
// All tests use fixed seeds, so they are deterministic replays, not flaky
// significance tests; the chi-square / dispersion thresholds document how
// much slack a correct sampler needs (p ~ 0.999 critical values).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/distributions.h"
#include "stats/rng.h"
#include "workload/workload.h"

namespace cbtree {
namespace {

/// Pearson chi-square statistic for observed counts vs expected
/// probabilities over the same support.
double ChiSquare(const std::vector<uint64_t>& observed,
                 const std::vector<double>& expected_probability,
                 uint64_t samples) {
  double chi2 = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    double expected = expected_probability[i] * static_cast<double>(samples);
    double diff = static_cast<double>(observed[i]) - expected;
    chi2 += diff * diff / expected;
  }
  return chi2;
}

// Wilson-Hilferty 0.999 critical value for df = 49 is ~85.4; 90 leaves a
// little documentation slack (the seeds are fixed, so this never flakes).
constexpr double kChi2Critical49 = 90.0;

TEST(SampleZipfIndexTest, UniformSkewMatchesUniformMass) {
  constexpr size_t kBins = 50;
  constexpr uint64_t kSamples = 100000;
  Rng rng(2026);
  std::vector<uint64_t> observed(kBins, 0);
  for (uint64_t i = 0; i < kSamples; ++i) {
    size_t idx = SampleZipfIndex(rng, kBins, /*zipf_skew=*/0.0);
    ASSERT_LT(idx, kBins);
    observed[idx] += 1;
  }
  std::vector<double> expected(kBins, 1.0 / static_cast<double>(kBins));
  EXPECT_LT(ChiSquare(observed, expected, kSamples), kChi2Critical49);
}

TEST(SampleZipfIndexTest, SkewedMassMatchesTheInverseCdfForm) {
  // The sampler computes idx = floor(u^(1/(1-s)) * n), so its exact law is
  // P(idx = i) = ((i+1)/n)^(1-s) - (i/n)^(1-s). Checking against that form
  // (not an "ideal" Zipf) pins the implemented contract: rank skew
  // concentrated on low indices, every bin still reachable.
  constexpr size_t kBins = 50;
  constexpr uint64_t kSamples = 100000;
  constexpr double kSkew = 0.8;
  Rng rng(4052);
  std::vector<uint64_t> observed(kBins, 0);
  for (uint64_t i = 0; i < kSamples; ++i) {
    size_t idx = SampleZipfIndex(rng, kBins, kSkew);
    ASSERT_LT(idx, kBins);
    observed[idx] += 1;
  }
  std::vector<double> expected(kBins);
  const double n = static_cast<double>(kBins);
  for (size_t i = 0; i < kBins; ++i) {
    expected[i] = std::pow((static_cast<double>(i) + 1.0) / n, 1.0 - kSkew) -
                  std::pow(static_cast<double>(i) / n, 1.0 - kSkew);
  }
  EXPECT_LT(ChiSquare(observed, expected, kSamples), kChi2Critical49);
  // Sanity on the shape itself: the hottest rank dominates and the mass is
  // monotone decreasing in expectation (compare the tails coarsely).
  EXPECT_GT(observed[0], observed[kBins - 1] * 10);
}

TEST(PoissonProcessTest, InterArrivalGapsHaveExponentialMeanAndCv) {
  constexpr double kRate = 500.0;
  constexpr int kGaps = 100000;
  PoissonProcess process(kRate, /*seed=*/77);
  double previous = 0.0;
  double sum = 0.0, sum_squares = 0.0;
  for (int i = 0; i < kGaps; ++i) {
    double arrival = process.NextArrival();
    double gap = arrival - previous;
    ASSERT_GT(gap, 0.0);
    previous = arrival;
    sum += gap;
    sum_squares += gap * gap;
  }
  double mean = sum / kGaps;
  double variance = sum_squares / kGaps - mean * mean;
  double cv = std::sqrt(variance) / mean;
  // Exponential(rate): mean 1/rate, coefficient of variation 1. The sample
  // mean of 1e5 gaps has relative std ~1/sqrt(1e5) ~ 0.3%; 3% bounds are
  // ten sigma.
  EXPECT_NEAR(mean, 1.0 / kRate, 0.03 / kRate);
  EXPECT_NEAR(cv, 1.0, 0.03);
}

TEST(PoissonProcessTest, SuperposedConnectionStreamsArePoissonByDispersion) {
  // The drive client splits lambda over N connections exactly like this:
  // N independent PoissonProcess(lambda / N) streams, distinct seeds. Their
  // superposition must be Poisson(lambda) — windowed counts with dispersion
  // index (variance / mean) ~ 1. A generator with clumped or regularized
  // arrivals fails this even when each stream's marginal rate is right.
  constexpr double kLambda = 200.0;
  constexpr int kStreams = 8;
  constexpr double kHorizon = 50.0;
  std::vector<double> arrivals;
  for (int stream = 0; stream < kStreams; ++stream) {
    // Same seed derivation shape as the driver's SenderLoop.
    PoissonProcess process(kLambda / kStreams,
                           11 * 0x9e3779b97f4a7c15ull + 17 * stream + 1);
    for (;;) {
      double t = process.NextArrival();
      if (t > kHorizon) break;
      arrivals.push_back(t);
    }
  }
  std::sort(arrivals.begin(), arrivals.end());

  // Total count: Poisson(lambda * horizon) = 10000, std = 100.
  const double expected_total = kLambda * kHorizon;
  EXPECT_NEAR(static_cast<double>(arrivals.size()), expected_total,
              4.0 * std::sqrt(expected_total));

  // Dispersion over 500 windows of 0.1s (mean ~20 per window). For a
  // Poisson process the index of dispersion is 1; the estimator's std is
  // ~sqrt(2 / windows) ~ 0.063, so [0.8, 1.2] is > 3 sigma slack.
  constexpr int kWindows = 500;
  const double window = kHorizon / kWindows;
  std::vector<uint64_t> counts(kWindows, 0);
  for (double t : arrivals) {
    int w = std::min(kWindows - 1, static_cast<int>(t / window));
    counts[w] += 1;
  }
  double mean = 0.0;
  for (uint64_t c : counts) mean += static_cast<double>(c);
  mean /= kWindows;
  double variance = 0.0;
  for (uint64_t c : counts) {
    double diff = static_cast<double>(c) - mean;
    variance += diff * diff;
  }
  variance /= kWindows - 1;
  double dispersion = variance / mean;
  EXPECT_GT(dispersion, 0.8);
  EXPECT_LT(dispersion, 1.2);

  // The merged gaps are themselves Exp(lambda): mean 1/lambda within a few
  // percent (superposition, not just thinning).
  double gap_sum = 0.0;
  for (size_t i = 1; i < arrivals.size(); ++i) {
    gap_sum += arrivals[i] - arrivals[i - 1];
  }
  double gap_mean = gap_sum / static_cast<double>(arrivals.size() - 1);
  EXPECT_NEAR(gap_mean, 1.0 / kLambda, 0.1 / kLambda);
}

TEST(PoissonProcessTest, WindowCountsMatchPoissonMassByChiSquare) {
  // Sharper than dispersion: chi-square of windowed counts against the
  // Poisson(lambda * window) pmf, binned with a pooled tail so every cell
  // keeps a healthy expectation.
  constexpr double kLambda = 100.0;
  constexpr double kHorizon = 400.0;
  constexpr double kWindow = 0.05;  // mean 5 per window
  const int windows = static_cast<int>(kHorizon / kWindow);
  PoissonProcess process(kLambda, /*seed=*/99);
  std::vector<uint64_t> counts(windows, 0);
  for (;;) {
    double t = process.NextArrival();
    if (t >= kHorizon) break;
    counts[static_cast<int>(t / kWindow)] += 1;
  }
  // Cells 0..11 individually, 12+ pooled (expected mass stays > 1%).
  constexpr int kCells = 13;
  std::vector<uint64_t> observed(kCells, 0);
  for (uint64_t c : counts) {
    observed[std::min<uint64_t>(c, kCells - 1)] += 1;
  }
  const double mu = kLambda * kWindow;
  std::vector<double> expected(kCells, 0.0);
  double pmf = std::exp(-mu);  // P(0)
  double cumulative = 0.0;
  for (int k = 0; k < kCells - 1; ++k) {
    expected[k] = pmf;
    cumulative += pmf;
    pmf *= mu / (k + 1);
  }
  expected[kCells - 1] = 1.0 - cumulative;
  // df = 12 -> 0.999 critical ~ 32.9; fixed seed, generous bound.
  EXPECT_LT(ChiSquare(observed, expected, windows), 35.0);
}

}  // namespace
}  // namespace cbtree
