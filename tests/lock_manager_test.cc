// FCFS R/W lock-queue semantics: sharing, exclusion, strict FCFS (no reader
// overtaking a queued writer), reader batching, and writer-presence tracking.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/lock_manager.h"

namespace cbtree {
namespace {

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest() : locks_([this] { return now_; }) {}

  void Request(NodeId node, LockMode mode, OpId op) {
    locks_.Request(node, mode, op, [this, mode, op] {
      grants_.push_back(std::string(LockModeName(mode)) +
                        std::to_string(op));
    });
  }

  double now_ = 0.0;
  LockManager locks_;
  std::vector<std::string> grants_;
};

TEST_F(LockManagerTest, ReadersShare) {
  Request(1, LockMode::kRead, 1);
  Request(1, LockMode::kRead, 2);
  Request(1, LockMode::kRead, 3);
  EXPECT_EQ(grants_, (std::vector<std::string>{"R1", "R2", "R3"}));
}

TEST_F(LockManagerTest, WriterExcludesReaders) {
  Request(1, LockMode::kWrite, 1);
  Request(1, LockMode::kRead, 2);
  EXPECT_EQ(grants_, (std::vector<std::string>{"W1"}));
  locks_.Release(1, 1);
  EXPECT_EQ(grants_, (std::vector<std::string>{"W1", "R2"}));
}

TEST_F(LockManagerTest, ReaderDoesNotOvertakeQueuedWriter) {
  Request(1, LockMode::kRead, 1);   // granted
  Request(1, LockMode::kWrite, 2);  // queued behind reader
  Request(1, LockMode::kRead, 3);   // must queue behind the writer (FCFS)
  EXPECT_EQ(grants_, (std::vector<std::string>{"R1"}));
  locks_.Release(1, 1);
  EXPECT_EQ(grants_, (std::vector<std::string>{"R1", "W2"}));
  locks_.Release(1, 2);
  EXPECT_EQ(grants_, (std::vector<std::string>{"R1", "W2", "R3"}));
}

TEST_F(LockManagerTest, ReaderBatchGrantedTogether) {
  Request(1, LockMode::kWrite, 1);
  Request(1, LockMode::kRead, 2);
  Request(1, LockMode::kRead, 3);
  Request(1, LockMode::kWrite, 4);
  Request(1, LockMode::kRead, 5);
  locks_.Release(1, 1);
  // Both leading readers go at once; the writer holds back the last reader.
  EXPECT_EQ(grants_, (std::vector<std::string>{"W1", "R2", "R3"}));
  locks_.Release(1, 2);
  EXPECT_EQ(grants_.size(), 3u);
  locks_.Release(1, 3);
  EXPECT_EQ(grants_, (std::vector<std::string>{"W1", "R2", "R3", "W4"}));
  locks_.Release(1, 4);
  EXPECT_EQ(grants_,
            (std::vector<std::string>{"W1", "R2", "R3", "W4", "R5"}));
}

TEST_F(LockManagerTest, WritersQueueInOrder) {
  Request(1, LockMode::kWrite, 1);
  Request(1, LockMode::kWrite, 2);
  Request(1, LockMode::kWrite, 3);
  EXPECT_EQ(grants_, (std::vector<std::string>{"W1"}));
  locks_.Release(1, 1);
  locks_.Release(1, 2);
  EXPECT_EQ(grants_, (std::vector<std::string>{"W1", "W2", "W3"}));
}

TEST_F(LockManagerTest, IndependentNodes) {
  Request(1, LockMode::kWrite, 1);
  Request(2, LockMode::kWrite, 2);
  EXPECT_EQ(grants_, (std::vector<std::string>{"W1", "W2"}));
}

TEST_F(LockManagerTest, HoldsReportsOwnership) {
  Request(1, LockMode::kWrite, 1);
  Request(1, LockMode::kRead, 2);
  EXPECT_TRUE(locks_.Holds(1, 1));
  EXPECT_FALSE(locks_.Holds(1, 2));  // queued, not held
  locks_.Release(1, 1);
  EXPECT_TRUE(locks_.Holds(1, 2));
}

TEST_F(LockManagerTest, TotalHeldTracksGrants) {
  Request(1, LockMode::kRead, 1);
  Request(1, LockMode::kRead, 2);
  Request(2, LockMode::kWrite, 3);
  EXPECT_EQ(locks_.total_held(), 3u);
  locks_.Release(1, 1);
  EXPECT_EQ(locks_.total_held(), 2u);
}

TEST_F(LockManagerTest, NotifyFreedAcceptsIdleNode) {
  Request(1, LockMode::kWrite, 1);
  locks_.Release(1, 1);
  locks_.NotifyNodeFreed(1);  // must not abort
  locks_.NotifyNodeFreed(99);  // unknown node is fine too
}

TEST_F(LockManagerTest, WriterPresenceTimeAverage) {
  locks_.TrackWriterPresence(7);
  now_ = 0.0;
  Request(7, LockMode::kWrite, 1);  // writer present from t=0
  now_ = 4.0;
  locks_.Release(7, 1);  // absent from t=4
  now_ = 10.0;
  EXPECT_NEAR(locks_.TrackedWriterPresence(), 0.4, 1e-12);
}

TEST_F(LockManagerTest, QueuedWriterCountsAsPresent) {
  locks_.TrackWriterPresence(7);
  now_ = 0.0;
  Request(7, LockMode::kRead, 1);
  now_ = 2.0;
  Request(7, LockMode::kWrite, 2);  // queued behind the reader: present
  now_ = 6.0;
  locks_.Release(7, 1);  // writer granted, still present
  now_ = 8.0;
  locks_.Release(7, 2);
  now_ = 10.0;
  // Present on [2, 8) = 6 of 10 time units.
  EXPECT_NEAR(locks_.TrackedWriterPresence(), 0.6, 1e-12);
}

}  // namespace
}  // namespace cbtree
