// Randomized fuzz of the WAL decoders, in the style of net_proto_fuzz_test:
// seeded mutations of valid record frames and segment headers (bit flips,
// length rewrites, truncation, garbage splices, torn-tail splices) asserting
// the decoders never read past their buffer and always land in one of the
// three documented outcomes.
//
// Every candidate is copied into an exactly-sized heap allocation before
// decoding, so a single-byte overread trips AddressSanitizer instead of
// silently hitting slack space — this test is part of the ASan/UBSan CI
// suite for exactly that reason.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "stats/rng.h"
#include "wal/wal_format.h"

namespace cbtree {
namespace wal {
namespace {

/// Decodes from an exactly-sized heap copy (ASan red zones on both ends).
DecodeStatus DecodeRecordExact(const std::string& buffer, WalRecord* out,
                               size_t* consumed) {
  std::unique_ptr<uint8_t[]> exact(new uint8_t[buffer.size()]);
  std::memcpy(exact.get(), buffer.data(), buffer.size());
  return DecodeRecord(exact.get(), buffer.size(), out, consumed);
}

DecodeStatus DecodeHeaderExact(const std::string& buffer, SegmentHeader* out) {
  std::unique_ptr<uint8_t[]> exact(new uint8_t[buffer.size()]);
  std::memcpy(exact.get(), buffer.data(), buffer.size());
  return DecodeSegmentHeader(exact.get(), buffer.size(), out);
}

std::string ValidRecordWire(Rng& rng) {
  WalRecord record;
  record.type = rng.NextBounded(2) == 0 ? RecordType::kInsert
                                        : RecordType::kDelete;
  record.lsn = rng.Next();
  record.key = static_cast<Key>(rng.Next());
  record.value = static_cast<Value>(rng.Next());
  std::string wire;
  AppendRecord(record, &wire);
  return wire;
}

/// The same corruption menu as the net protocol fuzz: byte flip, length
/// rewrite, truncation, prefix/suffix garbage, duplication, pure noise.
std::string Mutate(Rng& rng, std::string wire) {
  switch (rng.NextBounded(8)) {
    case 0:  // pristine
      break;
    case 1: {  // flip one byte anywhere (includes CRC and type)
      if (!wire.empty()) {
        size_t at = rng.NextBounded(wire.size());
        wire[at] = static_cast<char>(rng.Next());
      }
      break;
    }
    case 2: {  // rewrite the length prefix with an arbitrary u32
      uint32_t bogus = static_cast<uint32_t>(rng.Next());
      for (int i = 0; i < 4 && static_cast<size_t>(i) < wire.size(); ++i) {
        wire[i] = static_cast<char>((bogus >> (8 * i)) & 0xff);
      }
      break;
    }
    case 3:  // truncate (a torn tail)
      wire.resize(rng.NextBounded(wire.size() + 1));
      break;
    case 4: {  // append garbage
      size_t extra = rng.NextBounded(40);
      for (size_t i = 0; i < extra; ++i) {
        wire.push_back(static_cast<char>(rng.Next()));
      }
      break;
    }
    case 5: {  // prepend garbage (desynchronized scan)
      std::string junk;
      size_t extra = 1 + rng.NextBounded(8);
      for (size_t i = 0; i < extra; ++i) {
        junk.push_back(static_cast<char>(rng.Next()));
      }
      wire = junk + wire;
      break;
    }
    case 6:  // two frames back to back
      wire += wire;
      break;
    default: {  // pure noise, no valid frame at all
      size_t size = rng.NextBounded(64);
      wire.clear();
      for (size_t i = 0; i < size; ++i) {
        wire.push_back(static_cast<char>(rng.Next()));
      }
      break;
    }
  }
  return wire;
}

TEST(WalFuzzTest, RecordDecoderNeverOverreadsOrMisclassifies) {
  Rng rng(0xa1f02026ull);
  constexpr int kIterations = 50000;
  int ok = 0, need_more = 0, error = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    std::string wire = Mutate(rng, ValidRecordWire(rng));
    WalRecord out;
    size_t consumed = 0;
    DecodeStatus status = DecodeRecordExact(wire, &out, &consumed);
    // The declared payload length, when the prefix is present.
    uint64_t declared = 0;
    if (wire.size() >= 4) {
      for (int i = 0; i < 4; ++i) {
        declared |= static_cast<uint64_t>(static_cast<uint8_t>(wire[i]))
                    << (8 * i);
      }
    }
    switch (status) {
      case DecodeStatus::kOk:
        ++ok;
        ASSERT_EQ(consumed, kRecordFrameSize);
        ASSERT_LE(consumed, wire.size());
        ASSERT_TRUE(IsValidRecordType(static_cast<uint8_t>(out.type)));
        break;
      case DecodeStatus::kNeedMore:
        ++need_more;
        // Only a strict prefix of a well-formed frame asks for more bytes;
        // a hostile length must be rejected, never buffered for.
        ASSERT_LT(wire.size(), kRecordFrameSize);
        if (wire.size() >= 4) ASSERT_EQ(declared, kRecordPayloadSize);
        break;
      case DecodeStatus::kError:
        ++error;
        break;
    }
  }
  // Every outcome must be reachable, or the fuzz lost its teeth silently.
  EXPECT_GT(ok, 0);
  EXPECT_GT(need_more, 0);
  EXPECT_GT(error, 0);
}

TEST(WalFuzzTest, HeaderDecoderNeverOverreadsOrMisclassifies) {
  Rng rng(0x5e6f2026ull);
  constexpr int kIterations = 50000;
  int ok = 0, need_more = 0, error = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    SegmentHeader header;
    header.shard = static_cast<uint32_t>(rng.Next());
    header.start_lsn = rng.Next();
    std::string wire;
    AppendSegmentHeader(header, &wire);
    wire = Mutate(rng, wire);
    SegmentHeader out;
    switch (DecodeHeaderExact(wire, &out)) {
      case DecodeStatus::kOk:
        ++ok;
        ASSERT_GE(wire.size(), kSegmentHeaderSize);
        ASSERT_EQ(out.version, kSegmentVersion);
        break;
      case DecodeStatus::kNeedMore:
        ++need_more;
        ASSERT_LT(wire.size(), kSegmentHeaderSize);
        break;
      case DecodeStatus::kError:
        ++error;
        break;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(need_more, 0);
  EXPECT_GT(error, 0);
}

/// Torn-tail splice: a stream of valid frames cut at a random byte must
/// replay exactly the full frames before the cut, then stop with kNeedMore
/// (or kError if the cut landed such that the remaining prefix is invalid —
/// never with a bogus kOk record).
TEST(WalFuzzTest, TornTailSpliceReplaysExactlyTheFullPrefix) {
  Rng rng(0x70a42026ull);
  constexpr int kRounds = 5000;
  for (int round = 0; round < kRounds; ++round) {
    const size_t frames = 1 + rng.NextBounded(8);
    std::vector<WalRecord> sent;
    std::string wire;
    for (size_t i = 0; i < frames; ++i) {
      WalRecord record;
      record.type = rng.NextBounded(2) == 0 ? RecordType::kInsert
                                            : RecordType::kDelete;
      record.lsn = i + 1;
      record.key = static_cast<Key>(rng.Next());
      record.value = static_cast<Value>(rng.Next());
      sent.push_back(record);
      AppendRecord(record, &wire);
    }
    const size_t cut = rng.NextBounded(wire.size() + 1);
    wire.resize(cut);
    const size_t full_frames = cut / kRecordFrameSize;

    // Scan exactly like recovery does: decode from an exact-sized copy of
    // the remaining buffer until the decoder stops.
    size_t offset = 0;
    size_t replayed = 0;
    for (;;) {
      WalRecord out;
      size_t consumed = 0;
      DecodeStatus status =
          DecodeRecordExact(wire.substr(offset), &out, &consumed);
      if (status != DecodeStatus::kOk) {
        ASSERT_EQ(status, DecodeStatus::kNeedMore)
            << "clean truncation misread as corruption at round " << round;
        break;
      }
      ASSERT_LT(replayed, sent.size());
      EXPECT_EQ(out.lsn, sent[replayed].lsn);
      EXPECT_EQ(out.key, sent[replayed].key);
      EXPECT_EQ(out.value, sent[replayed].value);
      EXPECT_EQ(out.type, sent[replayed].type);
      offset += consumed;
      ++replayed;
    }
    EXPECT_EQ(replayed, full_frames)
        << "must replay every full frame before the tear, round " << round;
  }
}

/// A flipped byte inside the torn region must never resurrect as a decoded
/// record: splice a corrupted partial frame after valid ones and verify the
/// scan stops at the boundary with no bogus kOk.
TEST(WalFuzzTest, CorruptedTornTailNeverDecodes) {
  Rng rng(0xbad7a112026ull);
  constexpr int kRounds = 5000;
  for (int round = 0; round < kRounds; ++round) {
    std::string wire;
    const size_t frames = 1 + rng.NextBounded(4);
    for (size_t i = 0; i < frames; ++i) {
      WalRecord record{RecordType::kInsert, i + 1,
                       static_cast<Key>(rng.Next()),
                       static_cast<Value>(rng.Next())};
      AppendRecord(record, &wire);
    }
    // Torn tail: a partial frame with one byte flipped somewhere inside.
    std::string tail = ValidRecordWire(rng);
    tail.resize(1 + rng.NextBounded(tail.size() - 1));
    if (!tail.empty()) {
      size_t at = rng.NextBounded(tail.size());
      tail[at] = static_cast<char>(tail[at] ^ (1 + rng.NextBounded(255)));
    }
    wire += tail;

    size_t offset = 0;
    size_t replayed = 0;
    for (;;) {
      WalRecord out;
      size_t consumed = 0;
      DecodeStatus status =
          DecodeRecordExact(wire.substr(offset), &out, &consumed);
      if (status == DecodeStatus::kOk) {
        ++replayed;
        offset += consumed;
        // Never decode more than the intact frames: the torn tail is
        // shorter than a frame so it can only stop the scan.
        ASSERT_LE(replayed, frames);
        continue;
      }
      break;
    }
    EXPECT_EQ(replayed, frames);
  }
}

}  // namespace
}  // namespace wal
}  // namespace cbtree
