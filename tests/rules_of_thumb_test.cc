// Rules of Thumb 1-4 (§6) against the full analytical models.

#include <gtest/gtest.h>

#include "core/naive_model.h"
#include "core/optimistic_model.h"
#include "core/rules_of_thumb.h"

namespace cbtree {
namespace {

OperationMix Mix() { return OperationMix{0.3, 0.5, 0.2}; }

TEST(RulesOfThumbTest, NaiveRuleTracksModelInMemory) {
  // With everything in memory the rule of thumb is close to the model's
  // lambda_{rho=.5} (Figure 13's in-memory curve).
  for (int n : {13, 29, 59}) {
    ModelParams params = ModelParams::ForTree(40000, n, 1.0, Mix());
    NaiveLockCouplingModel model(params);
    auto exact = model.ArrivalRateForRootUtilization(0.5);
    ASSERT_TRUE(exact.has_value());
    double rule = NaiveRuleOfThumb(params);
    EXPECT_NEAR(rule / *exact, 1.0, 0.35) << "node size " << n;
  }
}

TEST(RulesOfThumbTest, NaiveRuleApproachesLimitForLargeNodes) {
  ModelParams params = ModelParams::ForTree(1000000, 400, 1.0, Mix());
  double rule = NaiveRuleOfThumb(params);
  double limit = NaiveRuleOfThumbLimit(params);
  EXPECT_NEAR(rule / limit, 1.0, 0.1);
}

TEST(RulesOfThumbTest, NaiveLimitIndependentOfNodeSize) {
  // §6: the Naive effective maximum does not improve with node size.
  ModelParams a = ModelParams::ForTree(40000, 13, 5.0, Mix());
  ModelParams b = ModelParams::ForTree(40000, 200, 5.0, Mix());
  EXPECT_DOUBLE_EQ(NaiveRuleOfThumbLimit(a), NaiveRuleOfThumbLimit(b));
}

TEST(RulesOfThumbTest, OptimisticRuleTracksModelInMemory) {
  for (int n : {13, 29, 59}) {
    ModelParams params = ModelParams::ForTree(40000, n, 1.0, Mix());
    OptimisticDescentModel model(params);
    auto exact = model.ArrivalRateForRootUtilization(0.5);
    ASSERT_TRUE(exact.has_value()) << "node size " << n;
    double rule = OptimisticRuleOfThumb(params);
    EXPECT_NEAR(rule / *exact, 1.0, 0.45) << "node size " << n;
  }
}

TEST(RulesOfThumbTest, OptimisticGrowsWithNodeSize) {
  // §6: OD's effective max rate is ~ N / log^2 N: bigger nodes, more rate.
  double last = 0.0;
  for (int n : {13, 29, 59, 127}) {
    ModelParams params = ModelParams::ForTree(40000, n, 5.0, Mix());
    double rule = OptimisticRuleOfThumb(params);
    EXPECT_GT(rule, last) << "node size " << n;
    last = rule;
  }
}

TEST(RulesOfThumbTest, OptimisticRuleApproachesLimit) {
  ModelParams params = ModelParams::ForTree(1000000, 400, 1.0, Mix());
  EXPECT_NEAR(OptimisticRuleOfThumb(params) /
                  OptimisticRuleOfThumbLimit(params),
              1.0, 0.15);
}

TEST(RulesOfThumbTest, OptimisticRuleAboveNaiveRule) {
  ModelParams params = ModelParams::PaperDefault();
  EXPECT_GT(OptimisticRuleOfThumb(params), NaiveRuleOfThumb(params));
  EXPECT_GT(OptimisticRuleOfThumbLimit(params),
            NaiveRuleOfThumbLimit(params));
}

TEST(RulesOfThumbTest, MoreSearchesRaiseNaiveLimit) {
  // Fewer writers at the root means a higher effective maximum.
  ModelParams searchy = ModelParams::ForTree(40000, 13, 5.0,
                                             OperationMix{0.8, 0.15, 0.05});
  ModelParams writey = ModelParams::ForTree(40000, 13, 5.0,
                                            OperationMix{0.1, 0.6, 0.3});
  EXPECT_GT(NaiveRuleOfThumbLimit(searchy), NaiveRuleOfThumbLimit(writey));
}

}  // namespace
}  // namespace cbtree
