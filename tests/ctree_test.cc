// The threaded concurrent B-trees: single-threaded correctness vs an oracle,
// and multi-threaded stress with post-hoc verification, for all three
// protocols.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "ctree/blink_tree.h"
#include "ctree/ctree.h"
#include "ctree/optimistic_tree.h"
#include "stats/rng.h"

namespace cbtree {
namespace {

class CTreeTest : public ::testing::TestWithParam<Algorithm> {
 protected:
  std::unique_ptr<ConcurrentBTree> Make(int node_size = 8) {
    return MakeConcurrentBTree(GetParam(), node_size);
  }
};

TEST_P(CTreeTest, SingleThreadedBasics) {
  auto tree = Make();
  EXPECT_FALSE(tree->Search(1).has_value());
  EXPECT_TRUE(tree->Insert(1, 10));
  EXPECT_TRUE(tree->Insert(2, 20));
  EXPECT_FALSE(tree->Insert(1, 11));  // overwrite
  EXPECT_EQ(tree->Search(1).value(), 11);
  EXPECT_EQ(tree->size(), 2u);
  EXPECT_TRUE(tree->Delete(1));
  EXPECT_FALSE(tree->Delete(1));
  EXPECT_EQ(tree->size(), 1u);
  tree->CheckInvariants();
}

TEST_P(CTreeTest, SingleThreadedOracle) {
  auto tree = Make(5);
  std::map<Key, Value> oracle;
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    Key key = static_cast<Key>(rng.NextBounded(800));
    uint64_t dice = rng.NextBounded(10);
    if (dice < 5) {
      Value value = static_cast<Value>(rng.Next() & 0xffff);
      ASSERT_EQ(tree->Insert(key, value),
                oracle.insert_or_assign(key, value).second);
    } else if (dice < 8) {
      ASSERT_EQ(tree->Delete(key), oracle.erase(key) > 0);
    } else {
      auto found = tree->Search(key);
      auto it = oracle.find(key);
      ASSERT_EQ(found.has_value(), it != oracle.end());
      if (found.has_value()) {
        ASSERT_EQ(*found, it->second);
      }
    }
  }
  EXPECT_EQ(tree->size(), oracle.size());
  tree->CheckInvariants();
}

TEST_P(CTreeTest, GrowsThroughManySplits) {
  auto tree = Make(4);
  for (Key k = 0; k < 3000; ++k) ASSERT_TRUE(tree->Insert(k, k));
  tree->CheckInvariants();
  EXPECT_GT(tree->stats().splits, 100u);
  EXPECT_GT(tree->stats().root_splits, 1u);
  for (Key k = 0; k < 3000; ++k) {
    ASSERT_TRUE(tree->Search(k).has_value()) << k;
  }
}

TEST_P(CTreeTest, ConcurrentDisjointInserts) {
  auto tree = Make(8);
  constexpr int kThreads = 4;
  constexpr Key kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      for (Key i = 0; i < kPerThread; ++i) {
        Key key = t * 1000000 + i;
        ASSERT_TRUE(tree->Insert(key, key * 2));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tree->size(), kThreads * kPerThread);
  tree->CheckInvariants();
  for (int t = 0; t < kThreads; ++t) {
    for (Key i = 0; i < kPerThread; i += 37) {
      Key key = t * 1000000 + i;
      ASSERT_EQ(tree->Search(key).value(), key * 2);
    }
  }
}

TEST_P(CTreeTest, ConcurrentInterleavedInserts) {
  // All threads insert into the same dense range (maximum split contention).
  auto tree = Make(5);
  constexpr int kThreads = 4;
  constexpr Key kKeys = 8000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      for (Key k = t; k < kKeys; k += kThreads) tree->Insert(k, k);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tree->size(), kKeys);
  tree->CheckInvariants();
  EXPECT_EQ(tree->CountKeys(), kKeys);
}

TEST_P(CTreeTest, ConcurrentMixedWorkload) {
  auto tree = Make(8);
  for (Key k = 0; k < 2000; ++k) tree->Insert(k * 2, k);
  constexpr int kThreads = 4;
  std::atomic<uint64_t> found{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, &found, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < 5000; ++i) {
        Key key = static_cast<Key>(rng.NextBounded(8000));
        uint64_t dice = rng.NextBounded(10);
        if (dice < 4) {
          tree->Insert(key, key);
        } else if (dice < 6) {
          tree->Delete(key);
        } else {
          if (tree->Search(key).has_value()) {
            found.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  tree->CheckInvariants();
  EXPECT_EQ(tree->CountKeys(), tree->size());
  EXPECT_GT(found.load(), 0u);
}

TEST_P(CTreeTest, ReadersRunDuringWrites) {
  auto tree = Make(8);
  for (Key k = 0; k < 1000; ++k) tree->Insert(k, k);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Key next = 1000;
    while (!stop.load(std::memory_order_relaxed)) {
      tree->Insert(next, next);
      ++next;
    }
  });
  uint64_t hits = 0;
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    Key key = static_cast<Key>(rng.NextBounded(1000));
    if (tree->Search(key).has_value()) ++hits;
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(hits, 20000u) << "pre-inserted keys must always stay visible";
  tree->CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Protocols, CTreeTest,
                         ::testing::Values(Algorithm::kNaiveLockCoupling,
                                           Algorithm::kOptimisticDescent,
                                           Algorithm::kLinkType,
                                           Algorithm::kTwoPhaseLocking,
                                           Algorithm::kOlc),
                         [](const auto& info) {
                           std::string name = AlgorithmName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(CTreeTest, ScanReturnsSortedRange) {
  auto tree = Make(6);
  for (Key k = 0; k < 500; ++k) tree->Insert(k * 2, k);
  std::vector<std::pair<Key, Value>> out;
  size_t n = tree->Scan(100, 200, 1000, &out);
  ASSERT_EQ(n, 51u);  // 100, 102, ..., 200
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, 100 + static_cast<Key>(i) * 2);
    EXPECT_EQ(out[i].second, out[i].first / 2);
  }
  // Limit honoured.
  out.clear();
  EXPECT_EQ(tree->Scan(0, 998, 7, &out), 7u);
  // Empty range.
  out.clear();
  EXPECT_EQ(tree->Scan(401, 401, 10, &out), 0u);
}

TEST_P(CTreeTest, ScanSurvivesConcurrentInserts) {
  auto tree = Make(6);
  // Pre-insert even keys in [0, 20000); writers add odd keys concurrently.
  for (Key k = 0; k < 10000; ++k) tree->Insert(k * 2, k);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Key next = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      tree->Insert(next, next);
      next += 2;
      if (next >= 20000) next = 1;
    }
  });
  for (int round = 0; round < 50; ++round) {
    std::vector<std::pair<Key, Value>> out;
    tree->Scan(2000, 4000, 100000, &out);
    // All pre-inserted even keys in range must be present and in order.
    size_t evens = 0;
    Key last = std::numeric_limits<Key>::min();
    for (const auto& [k, v] : out) {
      EXPECT_GT(k, last);
      last = k;
      if (k % 2 == 0) ++evens;
    }
    EXPECT_EQ(evens, 1001u) << "round " << round;
  }
  stop.store(true);
  writer.join();
  tree->CheckInvariants();
}

TEST_P(CTreeTest, MixedStressWithPostHocOracle) {
  // ≥8 threads hammer one tree with the full operation set — insert,
  // delete, search, range scan — under maximum node-level contention:
  // thread t owns the keys with key % kThreads == t, so neighbouring keys
  // (and therefore shared leaves, splits, merges) belong to different
  // threads. Ownership makes an exact post-hoc oracle possible: only the
  // owner ever writes a key, so after the join the tree must equal the
  // union of the per-thread oracles.
  auto tree = Make(6);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 12000;
  constexpr Key kKeySpan = 16000;  // keys in [0, kKeySpan), dense

  // Warm start so early deletes and scans see data from every partition.
  for (Key k = 0; k < kKeySpan; k += 3) tree->Insert(k, k * 31);

  std::vector<std::map<Key, Value>> oracles(kThreads);
  for (Key k = 0; k < kKeySpan; k += 3) {
    oracles[k % kThreads][k] = k * 31;
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, &oracles, t] {
      std::map<Key, Value>& oracle = oracles[t];
      Rng rng(9000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        Key key = static_cast<Key>(rng.NextBounded(kKeySpan / kThreads)) *
                      kThreads +
                  t;  // owned key
        uint64_t dice = rng.NextBounded(100);
        if (dice < 40) {
          Value value = static_cast<Value>(rng.Next() & 0xffffff);
          ASSERT_EQ(tree->Insert(key, value),
                    oracle.insert_or_assign(key, value).second);
        } else if (dice < 65) {
          ASSERT_EQ(tree->Delete(key), oracle.erase(key) > 0);
        } else if (dice < 95) {
          // Owned keys have exactly one writer: the lookup must agree with
          // the local oracle even mid-stress.
          auto found = tree->Search(key);
          auto it = oracle.find(key);
          ASSERT_EQ(found.has_value(), it != oracle.end()) << key;
          if (found.has_value()) {
            ASSERT_EQ(*found, it->second);
          }
        } else {
          // Global range scan across every partition while writers run:
          // results must be strictly ordered and in bounds.
          Key lo = static_cast<Key>(rng.NextBounded(kKeySpan));
          Key hi = lo + 500;
          if (hi > kKeySpan) hi = kKeySpan;
          std::vector<std::pair<Key, Value>> out;
          tree->Scan(lo, hi, 1000, &out);
          Key last = std::numeric_limits<Key>::min();
          for (const auto& [k, v] : out) {
            ASSERT_GE(k, lo);
            ASSERT_LE(k, hi);
            ASSERT_GT(k, last);
            last = k;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Post-hoc verification against the exact oracle.
  tree->CheckInvariants();
  size_t expected_size = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_size += oracles[t].size();
    for (const auto& [key, value] : oracles[t]) {
      auto found = tree->Search(key);
      ASSERT_TRUE(found.has_value()) << "thread " << t << " key " << key;
      ASSERT_EQ(*found, value) << "thread " << t << " key " << key;
    }
  }
  EXPECT_EQ(tree->size(), expected_size);
  EXPECT_EQ(tree->CountKeys(), expected_size);
  // Deleted / never-inserted keys must be absent (sampled).
  Rng rng(4242);
  for (int i = 0; i < 2000; ++i) {
    Key key = static_cast<Key>(rng.NextBounded(kKeySpan));
    bool in_oracle = oracles[key % kThreads].count(key) > 0;
    ASSERT_EQ(tree->Search(key).has_value(), in_oracle) << key;
  }
  // A full-tree scan must reproduce the oracle union in key order.
  std::vector<std::pair<Key, Value>> all;
  tree->Scan(0, kKeySpan, expected_size + 10, &all);
  ASSERT_EQ(all.size(), expected_size);
  for (size_t i = 1; i < all.size(); ++i) {
    ASSERT_LT(all[i - 1].first, all[i].first);
  }
  for (const auto& [key, value] : all) {
    ASSERT_EQ(oracles[key % kThreads].at(key), value);
  }
}

TEST_P(CTreeTest, StressRunsUnderLatchValidator) {
  // 8 threads of mixed operations with the latch-discipline validator
  // armed (no test handler installed, so any protocol violation aborts the
  // process with a held-stack dump — the test passing IS the assertion).
  // The counter check proves the traffic actually flowed through the
  // validator rather than bypassing it.
  if (!latch_check::Enabled()) {
    GTEST_SKIP() << "validator compiled out (CBTREE_LATCH_CHECK=OFF)";
  }
  uint64_t before = latch_check::CheckedAcquires();
  auto tree = Make(4);  // small nodes: maximum splits and link-crossings
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      Rng rng(7100 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        Key key = static_cast<Key>(rng.NextBounded(4000));
        uint64_t dice = rng.NextBounded(100);
        if (dice < 50) {
          tree->Insert(key, key * 3);
        } else if (dice < 75) {
          tree->Delete(key);
        } else {
          tree->Search(key);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  tree->CheckInvariants();
  // Latched protocols latch on every operation; OLC readers never latch,
  // so only its update half (50% inserts of the mix, plus deletes and
  // split/unlink lock chains) flows through the validator.
  uint64_t floor = static_cast<uint64_t>(kThreads) * kOpsPerThread;
  if (GetParam() == Algorithm::kOlc) floor /= 2;
  EXPECT_GT(latch_check::CheckedAcquires() - before, floor)
      << "operations must flow through the validator; it saw less";
}

TEST(CTreeStatsTest, OptimisticCountsRestarts) {
  OptimisticDescentTree tree(4);
  for (Key k = 0; k < 2000; ++k) tree.Insert(k, k);
  EXPECT_GT(tree.stats().restarts, 0u)
      << "sequential fills hit full leaves and must redo";
}

TEST(CTreeStatsTest, BLinkFollowsLinksUnderContention) {
  BLinkTree tree(4);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      Rng rng(t + 1);
      for (int i = 0; i < 4000; ++i) {
        tree.Insert(static_cast<Key>(rng.NextBounded(100000)), i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  tree.CheckInvariants();
  // Crossings are possible but not guaranteed on every run; the tree must at
  // least have split heavily and stayed consistent.
  EXPECT_GT(tree.stats().splits, 100u);
}

}  // namespace
}  // namespace cbtree
