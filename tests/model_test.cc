// The three analytical models: zero-load limits, monotonicity, stability
// boundaries, the algorithm ranking of Figure 12, and Theorem 2's
// root-bottleneck claim.

#include <gtest/gtest.h>

#include <cmath>

#include "core/analyzer.h"
#include "core/naive_model.h"
#include "core/linktype_model.h"
#include "core/optimistic_model.h"

namespace cbtree {
namespace {

ModelParams Paper(double disk_cost = 5.0) {
  return ModelParams::PaperDefault(disk_cost);
}

// The response time at vanishing arrival rate must equal the serial time.
double SerialSearchTime(const ModelParams& p) {
  double total = 0.0;
  for (int i = 1; i <= p.height(); ++i) total += p.cost.Se(i);
  return total;
}

TEST(NaiveModelTest, ZeroLoadSearchEqualsSerialTime) {
  NaiveLockCouplingModel model(Paper());
  AnalysisResult result = model.Analyze(1e-9);
  ASSERT_TRUE(result.stable);
  EXPECT_NEAR(result.per_search, SerialSearchTime(model.params()), 1e-3);
}

TEST(NaiveModelTest, ZeroLoadInsertIncludesModifyAndExpectedSplits) {
  NaiveLockCouplingModel model(Paper());
  const ModelParams& p = model.params();
  AnalysisResult result = model.Analyze(1e-9);
  ASSERT_TRUE(result.stable);
  double expected = p.cost.M();
  for (int i = 2; i <= p.height(); ++i) expected += p.cost.Se(i);
  for (int j = 1; j <= p.height() - 1; ++j) {
    expected += p.structure.PrFProduct(j) * p.cost.Sp(j);
  }
  EXPECT_NEAR(result.per_insert, expected, 1e-3);
}

TEST(NaiveModelTest, ResponseTimesIncreaseWithLoad) {
  NaiveLockCouplingModel model(Paper());
  double last_s = 0.0, last_i = 0.0;
  for (double lambda : {0.01, 0.05, 0.1, 0.15}) {
    AnalysisResult result = model.Analyze(lambda);
    ASSERT_TRUE(result.stable) << "lambda " << lambda;
    EXPECT_GT(result.per_search, last_s);
    EXPECT_GT(result.per_insert, last_i);
    last_s = result.per_search;
    last_i = result.per_insert;
  }
}

TEST(NaiveModelTest, SaturatesAtFiniteRate) {
  NaiveLockCouplingModel model(Paper());
  double max_rate = model.MaxThroughput();
  EXPECT_TRUE(std::isfinite(max_rate));
  EXPECT_GT(max_rate, 0.0);
  EXPECT_TRUE(model.Analyze(max_rate * 0.95).stable);
  EXPECT_FALSE(model.Analyze(max_rate * 1.05).stable);
}

TEST(NaiveModelTest, BottleneckIsTheRoot) {
  // Theorem 2: lock-coupling saturates at the root first.
  NaiveLockCouplingModel model(Paper());
  double max_rate = model.MaxThroughput();
  AnalysisResult result = model.Analyze(max_rate * 1.02);
  ASSERT_FALSE(result.stable);
  EXPECT_EQ(result.bottleneck_level, model.params().height());
}

TEST(NaiveModelTest, RootUtilizationRisesNonlinearly) {
  // Figure 10: going from rho_w = .5 to 1 takes less than a 50% rate bump.
  NaiveLockCouplingModel model(Paper());
  auto rate_half = model.ArrivalRateForRootUtilization(0.5);
  ASSERT_TRUE(rate_half.has_value());
  double max_rate = model.MaxThroughput();
  EXPECT_LT(max_rate / *rate_half, 1.5);
}

TEST(NaiveModelTest, RhoMonotoneInLambdaPerLevel) {
  NaiveLockCouplingModel model(Paper());
  AnalysisResult lo = model.Analyze(0.02);
  AnalysisResult hi = model.Analyze(0.1);
  for (int i = 1; i <= model.params().height(); ++i) {
    EXPECT_LE(lo.levels[i].rho_w, hi.levels[i].rho_w) << "level " << i;
  }
}

TEST(NaiveModelTest, WaitWDominatesWaitR) {
  // W(i) = R(i) + wait for readers >= R(i).
  NaiveLockCouplingModel model(Paper());
  AnalysisResult result = model.Analyze(0.1);
  ASSERT_TRUE(result.stable);
  for (int i = 1; i <= model.params().height(); ++i) {
    EXPECT_GE(result.levels[i].wait_w, result.levels[i].wait_r);
  }
}

TEST(OptimisticModelTest, ZeroLoadTimes) {
  OptimisticDescentModel model(Paper());
  const ModelParams& p = model.params();
  AnalysisResult result = model.Analyze(1e-9);
  ASSERT_TRUE(result.stable);
  EXPECT_NEAR(result.per_search, SerialSearchTime(p), 1e-3);
  // First descent: upper searches + leaf modify.
  double fd = p.cost.M();
  for (int i = 2; i <= p.height(); ++i) fd += p.cost.Se(i);
  EXPECT_NEAR(result.per_first_descent, fd, 1e-3);
  // Insert adds a redo pass with probability Pr[F(1)].
  EXPECT_GT(result.per_insert, result.per_delete);
  EXPECT_NEAR(result.per_insert,
              fd + p.structure.PrF(1) * result.per_redo_insert, 1e-6);
}

TEST(OptimisticModelTest, OutlastsNaive) {
  OptimisticDescentModel optimistic(Paper());
  NaiveLockCouplingModel naive(Paper());
  double max_o = optimistic.MaxThroughput();
  double max_n = naive.MaxThroughput();
  EXPECT_GT(max_o, max_n * 1.5) << "Figure 12: OD well above Naive";
}

TEST(OptimisticModelTest, AdvantageGrowsWithNodeSize) {
  // §6: OD's effective max rate scales ~N/log^2 N; Naive's is flat in N.
  OperationMix mix{0.3, 0.5, 0.2};
  double prev_ratio = 0.0;
  for (int n : {13, 29, 59}) {
    ModelParams params = ModelParams::ForTree(40000, n, 5.0, mix);
    OptimisticDescentModel od(params);
    NaiveLockCouplingModel naive(params);
    double ratio = od.MaxThroughput() / naive.MaxThroughput();
    EXPECT_GT(ratio, prev_ratio) << "node size " << n;
    prev_ratio = ratio;
  }
}

TEST(LinkTypeModelTest, ZeroLoadTimes) {
  LinkTypeModel model(Paper());
  AnalysisResult result = model.Analyze(1e-9);
  ASSERT_TRUE(result.stable);
  EXPECT_NEAR(result.per_search, SerialSearchTime(model.params()), 1e-3);
}

TEST(LinkTypeModelTest, EffectivelyUnboundedThroughput) {
  // §6: the Link-type algorithm has "no effective maximum throughput" — its
  // only saturation point is every leaf being write-busy, orders of
  // magnitude beyond the root bottleneck of the coupling algorithms (and far
  // past the open-system steady-state regime).
  LinkTypeModel link(Paper());
  NaiveLockCouplingModel naive(Paper());
  double link_max = link.MaxThroughput(/*cap=*/1e6);
  double naive_max = naive.MaxThroughput();
  EXPECT_TRUE(std::isinf(link_max) || link_max > 300.0 * naive_max);
  if (std::isfinite(link_max)) {
    // When it finally saturates it is on a lower level (writers starved by
    // huge on-disk reader batches), never the root as in lock-coupling.
    AnalysisResult result = link.Analyze(link_max * 1.05);
    EXPECT_FALSE(result.stable);
    EXPECT_LT(result.bottleneck_level, link.params().height());
    EXPECT_GE(result.bottleneck_level, 1);
  }
}

TEST(LinkTypeModelTest, RootSeesAlmostNoWriters) {
  LinkTypeModel model(Paper());
  AnalysisResult result = model.Analyze(0.5);
  ASSERT_TRUE(result.stable);
  int h = model.params().height();
  EXPECT_LT(result.levels[h].rho_w, 0.01);
}

TEST(ComparisonTest, Figure12RankingAtModerateLoad) {
  // Figure 12: each coupling algorithm's response blows up near its own
  // saturation point while the next algorithm barely notices that load.
  NaiveLockCouplingModel naive(Paper());
  OptimisticDescentModel od(Paper());
  LinkTypeModel link(Paper());
  // Near Naive's limit: Naive suffers, OD and Link are fine.
  double lambda_n = naive.MaxThroughput() * 0.95;
  AnalysisResult rn = naive.Analyze(lambda_n);
  AnalysisResult ro_at_n = od.Analyze(lambda_n);
  ASSERT_TRUE(rn.stable);
  ASSERT_TRUE(ro_at_n.stable);
  EXPECT_GT(rn.per_insert, 1.5 * ro_at_n.per_insert);
  EXPECT_GT(rn.per_search, ro_at_n.per_search);
  // Near OD's limit: OD suffers, Link-type is fine.
  double lambda_o = od.MaxThroughput() * 0.95;
  AnalysisResult ro = od.Analyze(lambda_o);
  AnalysisResult rl = link.Analyze(lambda_o);
  ASSERT_TRUE(ro.stable);
  ASSERT_TRUE(rl.stable);
  EXPECT_GT(ro.per_insert, 1.5 * rl.per_insert);
  EXPECT_FALSE(naive.Analyze(lambda_o).stable)
      << "Naive cannot even sustain OD's near-limit rate";
}

TEST(ComparisonTest, MaxThroughputRanking) {
  NaiveLockCouplingModel naive(Paper());
  OptimisticDescentModel od(Paper());
  LinkTypeModel link(Paper());
  double cap = 1e5;
  EXPECT_LT(naive.MaxThroughput(cap), od.MaxThroughput(cap));
  EXPECT_LT(od.MaxThroughput(cap), link.MaxThroughput(cap));
}

TEST(ComparisonTest, DiskCostReducesNaiveThroughput) {
  // Figure 11: max throughput falls as the disk cost rises.
  double last = 1e18;
  for (double d : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    NaiveLockCouplingModel model(Paper(d));
    double max_rate = model.MaxThroughput();
    EXPECT_LT(max_rate, last) << "disk cost " << d;
    last = max_rate;
  }
}

TEST(AnalyzerFactoryTest, MakesAllThree) {
  for (Algorithm algorithm :
       {Algorithm::kNaiveLockCoupling, Algorithm::kOptimisticDescent,
        Algorithm::kLinkType, Algorithm::kTwoPhaseLocking}) {
    auto analyzer = MakeAnalyzer(algorithm, Paper());
    ASSERT_NE(analyzer, nullptr);
    EXPECT_EQ(analyzer->name(), AlgorithmName(algorithm));
    EXPECT_TRUE(analyzer->Analyze(1e-6).stable);
  }
}

TEST(AnalyzerTest, MeanResponseIsMixWeighted) {
  NaiveLockCouplingModel model(Paper());
  AnalysisResult r = model.Analyze(0.05);
  const OperationMix& mix = model.params().mix;
  EXPECT_NEAR(r.mean_response,
              mix.q_s * r.per_search + mix.q_i * r.per_insert +
                  mix.q_d * r.per_delete,
              1e-9);
}

}  // namespace
}  // namespace cbtree
