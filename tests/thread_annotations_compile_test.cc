// Proves the thread-safety annotation macros (base/thread_annotations.h)
// are zero-cost: off Clang every macro expands to nothing (checked by
// stringifying the expansion), and on every compiler an annotated type is
// layout-identical to its unannotated twin — the attributes exist only in
// the analyzer's world.

#include "base/thread_annotations.h"

#include <shared_mutex>
#include <type_traits>

#include "base/mutex.h"
#include "ctree/cnode.h"
#include "gtest/gtest.h"

namespace cbtree {
namespace {

#define CBTREE_TEST_STRINGIFY_IMPL(x) #x
#define CBTREE_TEST_STRINGIFY(x) CBTREE_TEST_STRINGIFY_IMPL(x)

#ifndef __clang__
// Off Clang the macros must vanish entirely: stringifying the expansion
// yields the empty string (sizeof "" == 1). A non-empty expansion would at
// best warn about an unknown attribute and at worst change semantics.
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_CAPABILITY("latch"))) == 1,
              "CBTREE_CAPABILITY must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_SCOPED_CAPABILITY)) == 1,
              "CBTREE_SCOPED_CAPABILITY must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_GUARDED_BY(m))) == 1,
              "CBTREE_GUARDED_BY must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_PT_GUARDED_BY(m))) == 1,
              "CBTREE_PT_GUARDED_BY must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_REQUIRES(m))) == 1,
              "CBTREE_REQUIRES must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_REQUIRES_SHARED(m))) == 1,
              "CBTREE_REQUIRES_SHARED must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_ACQUIRE(m))) == 1,
              "CBTREE_ACQUIRE must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_ACQUIRE_SHARED(m))) == 1,
              "CBTREE_ACQUIRE_SHARED must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_RELEASE(m))) == 1,
              "CBTREE_RELEASE must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_RELEASE_SHARED(m))) == 1,
              "CBTREE_RELEASE_SHARED must expand to nothing off Clang");
static_assert(
    sizeof(CBTREE_TEST_STRINGIFY(CBTREE_TRY_ACQUIRE(true, m))) == 1,
    "CBTREE_TRY_ACQUIRE must expand to nothing off Clang");
static_assert(
    sizeof(CBTREE_TEST_STRINGIFY(CBTREE_TRY_ACQUIRE_SHARED(true, m))) == 1,
    "CBTREE_TRY_ACQUIRE_SHARED must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_EXCLUDES(m))) == 1,
              "CBTREE_EXCLUDES must expand to nothing off Clang");
static_assert(
    sizeof(CBTREE_TEST_STRINGIFY(CBTREE_NO_THREAD_SAFETY_ANALYSIS)) == 1,
    "CBTREE_NO_THREAD_SAFETY_ANALYSIS must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_ACQUIRED_BEFORE(m))) == 1,
              "CBTREE_ACQUIRED_BEFORE must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_ACQUIRED_AFTER(m))) == 1,
              "CBTREE_ACQUIRED_AFTER must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_REQUIRES_EPOCH)) == 1,
              "CBTREE_REQUIRES_EPOCH must expand to nothing off Clang");
static_assert(sizeof(CBTREE_TEST_STRINGIFY(CBTREE_EPOCH_QUIESCENT)) == 1,
              "CBTREE_EPOCH_QUIESCENT must expand to nothing off Clang");
#endif  // !__clang__

// Layout parity, checked under every compiler: the annotated NodeLatch
// wraps exactly one std::shared_mutex, and the annotated Mutex exactly one
// std::mutex. Attributes must never add storage.
static_assert(sizeof(NodeLatch) == sizeof(std::shared_mutex),
              "NodeLatch must add no storage over std::shared_mutex");
static_assert(alignof(NodeLatch) == alignof(std::shared_mutex),
              "NodeLatch must not change alignment");
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "Mutex must add no storage over std::mutex");
static_assert(alignof(Mutex) == alignof(std::mutex),
              "Mutex must not change alignment");

struct Unannotated {
  int guarded = 0;
  int* pointed = nullptr;
};

struct Annotated {
  int guarded CBTREE_GUARDED_BY(mutex) = 0;
  int* pointed CBTREE_PT_GUARDED_BY(mutex) = nullptr;
  static Mutex mutex;
};

static_assert(sizeof(Annotated) == sizeof(Unannotated),
              "member annotations must not change layout");

TEST(ThreadAnnotationsCompileTest, AnnotatedFunctionsAreCallable) {
  // An annotated function body behaves identically; this is a smoke check
  // that the macros compile in every position the codebase uses them.
  Mutex mutex;
  {
    MutexLock lock(&mutex);
  }
  NodeLatch latch;
  latch.lock();
  latch.unlock();
  latch.lock_shared();
  ASSERT_FALSE(latch.try_lock());  // shared held: exclusive must fail
  latch.unlock_shared();
  ASSERT_TRUE(latch.try_lock_shared());
  latch.unlock_shared();
}

}  // namespace
}  // namespace cbtree
