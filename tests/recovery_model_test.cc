// The §7 recovery extension: Leaf-only recovery costs a little; Naive
// recovery costs a lot (Figures 15 and 16).

#include <gtest/gtest.h>

#include "core/optimistic_model.h"

namespace cbtree {
namespace {

ModelParams Fig15Params() { return ModelParams::PaperDefault(10.0); }

OptimisticDescentModel WithPolicy(RecoveryPolicy policy,
                                  double t_trans = 100.0) {
  return OptimisticDescentModel(Fig15Params(), RecoveryConfig{policy, t_trans});
}

TEST(RecoveryModelTest, NamesDistinguishPolicies) {
  EXPECT_EQ(WithPolicy(RecoveryPolicy::kNone, 0).name(),
            "optimistic-descent");
  EXPECT_EQ(WithPolicy(RecoveryPolicy::kLeafOnly).name(),
            "optimistic-descent+leaf-only-recovery");
  EXPECT_EQ(WithPolicy(RecoveryPolicy::kNaive).name(),
            "optimistic-descent+naive-recovery");
}

TEST(RecoveryModelTest, OrderingAtModerateLoad) {
  OptimisticDescentModel none = WithPolicy(RecoveryPolicy::kNone, 0.0);
  OptimisticDescentModel leaf = WithPolicy(RecoveryPolicy::kLeafOnly);
  OptimisticDescentModel naive = WithPolicy(RecoveryPolicy::kNaive);
  double lambda = naive.MaxThroughput() * 0.8;
  AnalysisResult rn = none.Analyze(lambda);
  AnalysisResult rl = leaf.Analyze(lambda);
  AnalysisResult rv = naive.Analyze(lambda);
  ASSERT_TRUE(rn.stable);
  ASSERT_TRUE(rl.stable);
  ASSERT_TRUE(rv.stable);
  EXPECT_LE(rn.per_insert, rl.per_insert);
  EXPECT_LT(rl.per_insert, rv.per_insert);
}

TEST(RecoveryModelTest, LeafOnlyIsOnlySlightlyWorseThanNone) {
  // Figures 15/16: Leaf-only hugs the no-recovery curve; Naive diverges.
  OptimisticDescentModel none = WithPolicy(RecoveryPolicy::kNone, 0.0);
  OptimisticDescentModel leaf = WithPolicy(RecoveryPolicy::kLeafOnly);
  OptimisticDescentModel naive = WithPolicy(RecoveryPolicy::kNaive);
  double lambda = naive.MaxThroughput() * 0.85;
  double none_insert = none.Analyze(lambda).per_insert;
  double leaf_insert = leaf.Analyze(lambda).per_insert;
  double naive_insert = naive.Analyze(lambda).per_insert;
  double leaf_penalty = leaf_insert - none_insert;
  double naive_penalty = naive_insert - none_insert;
  EXPECT_GT(naive_penalty, 2.0 * leaf_penalty);
}

TEST(RecoveryModelTest, NaiveRecoveryShrinksMaxThroughput) {
  OptimisticDescentModel none = WithPolicy(RecoveryPolicy::kNone, 0.0);
  OptimisticDescentModel leaf = WithPolicy(RecoveryPolicy::kLeafOnly);
  OptimisticDescentModel naive = WithPolicy(RecoveryPolicy::kNaive);
  double m_none = none.MaxThroughput();
  double m_leaf = leaf.MaxThroughput();
  double m_naive = naive.MaxThroughput();
  EXPECT_LE(m_leaf, m_none);
  EXPECT_LT(m_naive, m_leaf);
}

TEST(RecoveryModelTest, PenaltyGrowsWithTransactionTime) {
  double last = 0.0;
  OptimisticDescentModel base = WithPolicy(RecoveryPolicy::kNaive, 50.0);
  double lambda = base.MaxThroughput() * 0.5;
  for (double t : {10.0, 25.0, 50.0}) {
    OptimisticDescentModel model = WithPolicy(RecoveryPolicy::kNaive, t);
    AnalysisResult result = model.Analyze(lambda);
    ASSERT_TRUE(result.stable) << "t_trans " << t;
    EXPECT_GT(result.per_insert, last);
    last = result.per_insert;
  }
}

TEST(RecoveryModelTest, ZeroTransTimeMatchesNoRecovery) {
  OptimisticDescentModel none = WithPolicy(RecoveryPolicy::kNone, 0.0);
  OptimisticDescentModel zero = WithPolicy(RecoveryPolicy::kNaive, 0.0);
  AnalysisResult a = none.Analyze(0.1);
  AnalysisResult b = zero.Analyze(0.1);
  ASSERT_TRUE(a.stable && b.stable);
  EXPECT_NEAR(a.per_insert, b.per_insert, 1e-9);
  EXPECT_NEAR(a.per_search, b.per_search, 1e-9);
}

}  // namespace
}  // namespace cbtree
