// Adversarial tests of the structural validator: corrupt a healthy tree in
// each way the validator claims to detect, and check it actually does.

#include <gtest/gtest.h>

#include "btree/btree.h"
#include "btree/validate.h"

namespace cbtree {
namespace {

BTree HealthyTree() {
  BTree tree(BTree::Options{5, MergePolicy::kAtEmpty});
  for (Key k = 0; k < 200; ++k) tree.Insert(k * 2, k);
  EXPECT_TRUE(ValidateTree(tree));
  EXPECT_GE(tree.height(), 3);
  return tree;
}

// Finds some leaf and its parent for corruption.
std::pair<NodeId, NodeId> LeafAndParent(const BTree& tree) {
  NodeId parent = tree.root();
  while (tree.node(tree.node(parent).children[0]).level > 1) {
    parent = tree.node(parent).children[0];
  }
  return {tree.node(parent).children[0], parent};
}

TEST(ValidateTest, DetectsOutOfOrderKeys) {
  BTree tree = HealthyTree();
  auto [leaf, parent] = LeafAndParent(tree);
  Node& n = tree.mutable_store().Get(leaf);
  ASSERT_GE(n.keys.size(), 2u);
  std::swap(n.keys[0], n.keys[1]);
  auto result = ValidateTree(tree);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("order"), std::string::npos) << result.error;
}

TEST(ValidateTest, DetectsKeyAboveParentBound) {
  BTree tree = HealthyTree();
  auto [leaf, parent] = LeafAndParent(tree);
  Node& n = tree.mutable_store().Get(leaf);
  n.keys.back() = kInfKey - 1;  // far above the leaf's range
  EXPECT_FALSE(ValidateTree(tree).ok);
}

TEST(ValidateTest, DetectsOverCapacityNode) {
  BTree tree = HealthyTree();
  auto [leaf, parent] = LeafAndParent(tree);
  Node& n = tree.mutable_store().Get(leaf);
  // Blow past max_node_size = 5. (Capacity is checked before key ranges, so
  // the verdict is "over capacity" even though some keys also leave the
  // leaf's range.)
  Key base = n.keys.front();
  n.keys.clear();
  n.values.clear();
  for (int i = 0; i < 9; ++i) {
    n.keys.push_back(base + i);
    n.values.push_back(0);
  }
  auto result = ValidateTree(tree);
  EXPECT_FALSE(result.ok);
}

TEST(ValidateTest, DetectsSizeMismatch) {
  BTree tree = HealthyTree();
  auto [leaf, parent] = LeafAndParent(tree);
  Node& n = tree.mutable_store().Get(leaf);
  // Silently drop a key: reachable count no longer matches size().
  n.keys.pop_back();
  n.values.pop_back();
  auto result = ValidateTree(tree);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("reachable"), std::string::npos)
      << result.error;
}

TEST(ValidateTest, DetectsBrokenRightLink) {
  BTree tree = HealthyTree();
  auto [leaf, parent] = LeafAndParent(tree);
  Node& n = tree.mutable_store().Get(leaf);
  NodeId orig = n.right;
  ASSERT_NE(orig, kInvalidNode);
  n.right = kInvalidNode;
  EXPECT_FALSE(ValidateTree(tree, {.check_links = true}).ok);
  // With link checking off, the rest of the structure is still fine.
  EXPECT_TRUE(ValidateTree(tree, {.check_links = false}).ok);
  n.right = orig;
  EXPECT_TRUE(ValidateTree(tree).ok);
}

TEST(ValidateTest, DetectsInternalBoundHighKeyMismatch) {
  BTree tree = HealthyTree();
  auto [leaf, parent] = LeafAndParent(tree);
  Node& p = tree.mutable_store().Get(parent);
  p.high_key = p.keys.back() + 1;  // breaks keys.back() == high_key
  EXPECT_FALSE(ValidateTree(tree).ok);
}

TEST(ValidateTest, DetectsUnderOccupancyOnlyWhenAsked) {
  BTree tree(BTree::Options{6, MergePolicy::kAtHalf});
  for (Key k = 0; k < 300; ++k) tree.Insert(k, k);
  EXPECT_TRUE(
      ValidateTree(tree, {.check_links = true, .check_min_occupancy = true})
          .ok);
  auto [leaf, parent] = LeafAndParent(tree);
  Node& n = tree.mutable_store().Get(leaf);
  // Strip it below ceil(6/2) = 3 entries but keep size() consistent by
  // moving keys nowhere — so only run the occupancy check.
  while (n.keys.size() > 1) {
    n.keys.pop_back();
    n.values.pop_back();
  }
  EXPECT_FALSE(
      ValidateTree(tree, {.check_links = false, .check_min_occupancy = true})
          .ok);
}

}  // namespace
}  // namespace cbtree
