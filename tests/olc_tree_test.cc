// The OLC tree's dedicated battery: deterministic restart injection through
// the descent hook (a reader whose snapshot is invalidated mid-descent must
// restart and never return stale data), empty-leaf unlink + epoch
// reclamation accounting, an 8-thread mixed-op stress with an exact
// post-hoc oracle, and a sharded-server end-to-end over --protocol=olc.
//
// The concurrent cases are the sanitizer payload: the TSAN suite proves the
// latch-free readers race-free, the ASan suite proves epoch reclamation
// never frees a node a guard can still reach.

#include "ctree/olc_tree.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ctree/ctree.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "stats/rng.h"

namespace cbtree {
namespace {

// ---------------------------------------------------------------------------
// Deterministic restart injection.
// ---------------------------------------------------------------------------

// Hook state: bump the version of the first `budget` nodes a reader visits.
struct BumpState {
  std::atomic<int> budget{0};
  std::atomic<int> fired{0};
};

void BumpHook(void* arg, OlcNode* node) {
  auto* state = static_cast<BumpState*>(arg);
  int remaining = state->budget.load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (state->budget.compare_exchange_weak(remaining, remaining - 1,
                                            std::memory_order_relaxed)) {
      OlcTree::BumpVersionForTest(node);
      state->fired.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

TEST(OlcRestartInjectionTest, BumpedVersionForcesReaderRestart) {
  OlcTree tree(4);
  for (Key k = 0; k < 400; ++k) ASSERT_TRUE(tree.Insert(k, k * 7));
  ASSERT_GT(tree.stats().splits, 0u) << "need a multi-level tree";

  BumpState state;
  tree.SetDescendHookForTest(&BumpHook, &state);

  // Every descent's version stamp is invalidated `budget` times before the
  // search is allowed through; each invalidation must cost exactly one
  // restart, and the final answer must still be exact.
  for (int budget = 1; budget <= 4; ++budget) {
    state.budget.store(budget, std::memory_order_relaxed);
    state.fired.store(0, std::memory_order_relaxed);
    uint64_t restarts_before = tree.stats().restarts;
    auto found = tree.Search(123);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, 123 * 7);
    EXPECT_EQ(state.fired.load(), budget) << "hook must fire budget times";
    EXPECT_GE(tree.stats().restarts - restarts_before,
              static_cast<uint64_t>(budget))
        << "every bumped stamp must force a restart";
  }

  tree.SetDescendHookForTest(nullptr, nullptr);
  uint64_t quiet = tree.stats().restarts;
  EXPECT_TRUE(tree.Search(123).has_value());
  EXPECT_EQ(tree.stats().restarts, quiet)
      << "no hook, no contention: the descent must validate first try";
}

// Hook that overwrites the value stored beside `key` in whatever leaf holds
// it, then bumps the version — simulating a writer that slipped in during
// the reader's residence in the node. The reader must restart and report
// the post-write value, never a torn or superseded one.
struct MutateState {
  Key key = 0;
  Value fresh = 0;
  std::atomic<int> budget{0};
};

void MutateHook(void* arg, OlcNode* node) {
  auto* state = static_cast<MutateState*>(arg);
  if (node->level.load(std::memory_order_relaxed) != 1) return;
  if (state->budget.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    state->budget.store(0, std::memory_order_relaxed);
    return;
  }
  int count = node->count.load(std::memory_order_relaxed);
  for (int i = 0; i < count; ++i) {
    if (node->keys[i].load(std::memory_order_relaxed) == state->key) {
      node->values[i].store(state->fresh, std::memory_order_relaxed);
      OlcTree::BumpVersionForTest(node);
      return;
    }
  }
}

TEST(OlcRestartInjectionTest, ReaderNeverReturnsSupersededValue) {
  OlcTree tree(4);
  for (Key k = 0; k < 400; ++k) ASSERT_TRUE(tree.Insert(k, 1));

  MutateState state;
  state.key = 250;
  state.fresh = 2;
  state.budget.store(1, std::memory_order_relaxed);
  tree.SetDescendHookForTest(&MutateHook, &state);

  uint64_t restarts_before = tree.stats().restarts;
  auto found = tree.Search(250);
  tree.SetDescendHookForTest(nullptr, nullptr);

  ASSERT_TRUE(found.has_value());
  // The write landed during the reader's leaf residence and bumped the
  // version: the reader restarted and must report the new value.
  EXPECT_EQ(*found, 2) << "validation let a superseded snapshot through";
  EXPECT_GT(tree.stats().restarts, restarts_before);
}

// ---------------------------------------------------------------------------
// Empty-leaf unlink and epoch reclamation accounting.
// ---------------------------------------------------------------------------

TEST(OlcUnlinkTest, EmptiedLeavesAreUnlinkedAndRetired) {
  OlcTree tree(4);
  constexpr Key kKeys = 2000;
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.Insert(k, k));
  // Delete everything: most leaves empty and must be spliced out (the
  // leftmost leaf per parent is kept — the unlink needs a left sibling).
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.Delete(k));

  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.CountKeys(), 0u);
  tree.CheckInvariants();
  EXPECT_GT(tree.unlinks(), 100u)
      << "a full drain of 2000 keys at node_size 4 must unlink many leaves";

  EpochStats epoch = tree.epoch_stats();
  EXPECT_EQ(epoch.retired, tree.unlinks())
      << "every unlinked leaf is retired, nothing else is";
  EXPECT_LE(epoch.freed, epoch.retired);
  EXPECT_EQ(epoch.pending, epoch.retired - epoch.freed);
  // Each unlink's Retire pass reclaims everything the previous operations
  // retired (their pins have moved on); only the final unlink's own leaf
  // can still be pending, held back by its own operation's guard.
  EXPECT_LE(epoch.pending, 1u) << "quiescent epochs must have drained";

  // The structure must remain fully usable after mass reclamation.
  for (Key k = 0; k < kKeys; k += 7) {
    EXPECT_FALSE(tree.Search(k).has_value()) << k;
    ASSERT_TRUE(tree.Insert(k, k * 2));
    EXPECT_EQ(tree.Search(k).value(), k * 2);
  }
  tree.CheckInvariants();
}

TEST(OlcUnlinkTest, ConcurrentDrainStaysConsistent) {
  // 8 threads delete a fully-populated tree while others search it: the
  // unlink try-lock chains race each other and the readers race the
  // splices. Post-hoc the tree must be empty and invariant-clean.
  OlcTree tree(4);
  constexpr int kThreads = 8;
  constexpr Key kKeys = 8000;
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.Insert(k, k));

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      if (t % 2 == 0) {
        // Deleters partition the key space.
        for (Key k = t / 2; k < kKeys; k += kThreads / 2) {
          ASSERT_TRUE(tree.Delete(k)) << k;
        }
      } else {
        // Readers sweep; hits shrink toward zero but must never misread.
        Rng rng(500 + t);
        for (int i = 0; i < 40000; ++i) {
          Key key = static_cast<Key>(rng.NextBounded(kKeys));
          auto found = tree.Search(key);
          if (found.has_value()) {
            ASSERT_EQ(*found, key);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.CountKeys(), 0u);
  tree.CheckInvariants();
  EXPECT_GT(tree.unlinks(), 0u);
  EpochStats epoch = tree.epoch_stats();
  EXPECT_EQ(epoch.retired, tree.unlinks());
  EXPECT_EQ(epoch.pending, epoch.retired - epoch.freed);
}

// ---------------------------------------------------------------------------
// Mixed-op stress with an exact post-hoc oracle (the ctree_test pattern,
// tightened: smaller nodes and a delete-heavy mix so splits, restarts AND
// unlinks all fire while the oracle watches).
// ---------------------------------------------------------------------------

TEST(OlcStressTest, MixedOpsMatchExactOracle) {
  OlcTree tree(4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 15000;
  constexpr Key kKeySpan = 12000;

  for (Key k = 0; k < kKeySpan; k += 2) tree.Insert(k, k * 13);
  std::vector<std::map<Key, Value>> oracles(kThreads);
  for (Key k = 0; k < kKeySpan; k += 2) oracles[k % kThreads][k] = k * 13;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, &oracles, t] {
      std::map<Key, Value>& oracle = oracles[t];
      Rng rng(6200 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Thread t owns keys ≡ t (mod kThreads): adjacent keys share leaves
        // but never writers, so the local oracle stays exact mid-stress.
        Key key = static_cast<Key>(rng.NextBounded(kKeySpan / kThreads)) *
                      kThreads +
                  t;
        uint64_t dice = rng.NextBounded(100);
        if (dice < 35) {
          Value value = static_cast<Value>(rng.Next() & 0xffffff);
          ASSERT_EQ(tree.Insert(key, value),
                    oracle.insert_or_assign(key, value).second);
        } else if (dice < 70) {
          ASSERT_EQ(tree.Delete(key), oracle.erase(key) > 0);
        } else if (dice < 95) {
          auto found = tree.Search(key);
          auto it = oracle.find(key);
          ASSERT_EQ(found.has_value(), it != oracle.end()) << key;
          if (found.has_value()) ASSERT_EQ(*found, it->second);
        } else {
          Key lo = static_cast<Key>(rng.NextBounded(kKeySpan));
          std::vector<std::pair<Key, Value>> out;
          tree.Scan(lo, lo + 300, 1000, &out);
          Key last = std::numeric_limits<Key>::min();
          for (const auto& [k, v] : out) {
            ASSERT_GE(k, lo);
            ASSERT_LE(k, lo + 300);
            ASSERT_GT(k, last);
            last = k;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  tree.CheckInvariants();
  size_t expected_size = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_size += oracles[t].size();
    for (const auto& [key, value] : oracles[t]) {
      auto found = tree.Search(key);
      ASSERT_TRUE(found.has_value()) << "thread " << t << " key " << key;
      ASSERT_EQ(*found, value) << "thread " << t << " key " << key;
    }
  }
  EXPECT_EQ(tree.size(), expected_size);
  EXPECT_EQ(tree.CountKeys(), expected_size);

  // Absent keys stay absent (sampled).
  Rng rng(93);
  for (int i = 0; i < 2000; ++i) {
    Key key = static_cast<Key>(rng.NextBounded(kKeySpan));
    bool in_oracle = oracles[key % kThreads].count(key) > 0;
    ASSERT_EQ(tree.Search(key).has_value(), in_oracle) << key;
  }

  // Epoch accounting must balance whatever the unlink races produced.
  EpochStats epoch = tree.epoch_stats();
  EXPECT_EQ(epoch.retired, tree.unlinks());
  EXPECT_EQ(epoch.pending, epoch.retired - epoch.freed);
}

// ---------------------------------------------------------------------------
// Sharded-server end-to-end over --protocol=olc: delete-heavy traffic so
// epoch reclamation runs inside the serving path, with an exact per-client
// oracle against the quiescent shard trees (the net_shard_test pattern).
// ---------------------------------------------------------------------------

TEST(OlcServerTest, ShardedServingWithDeleteHeavyTrafficMatchesOracle) {
  constexpr int kShards = 4;
  net::ServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;
  options.algorithm = Algorithm::kOlc;
  options.shards = kShards;
  options.loops = 2;
  options.workers = 4;
  options.node_size = 4;  // small nodes: unlinks fire during serving
  options.drain_timeout_ms = 10000;
  net::Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 400;
  constexpr Key kRangeStride = 100000;
  std::atomic<int> failures{0};
  std::vector<std::map<Key, std::optional<Value>>> expected(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client;
      std::string err;
      if (!client.Connect("127.0.0.1", server.port(), &err)) {
        failures.fetch_add(1);
        return;
      }
      const Key base = static_cast<Key>(c + 1) * kRangeStride;
      for (int i = 0; i < kOpsPerClient; ++i) {
        Key key = base + static_cast<Key>(i % 64);
        Value value = static_cast<Value>(10000 * c + i);
        // Insert-then-mostly-delete churn: leaves fill, empty and unlink
        // while other clients' traffic shares the shard trees.
        if (i % 3 != 2) {
          if (!client.Insert(key, value).has_value()) {
            failures.fetch_add(1);
            return;
          }
          expected[c][key] = value;
        } else {
          if (!client.Delete(key).has_value()) {
            failures.fetch_add(1);
            return;
          }
          expected[c][key] = std::nullopt;
        }
      }
      client.Close();
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);
  server.Shutdown();
  server.CheckAllInvariants();

  for (int c = 0; c < kClients; ++c) {
    for (const auto& [key, value] : expected[c]) {
      const int home = net::ShardOfKey(key, kShards);
      std::optional<Value> found = server.tree(home)->Search(key);
      if (value.has_value()) {
        ASSERT_TRUE(found.has_value()) << "key " << key;
        EXPECT_EQ(*found, *value) << "key " << key;
      } else {
        EXPECT_FALSE(found.has_value()) << "key " << key;
      }
      for (int other = 0; other < kShards; ++other) {
        if (other != home) {
          EXPECT_FALSE(server.tree(other)->Search(key).has_value())
              << "key " << key << " leaked into shard " << other;
        }
      }
    }
  }
}

}  // namespace
}  // namespace cbtree
