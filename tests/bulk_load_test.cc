// BTree::BulkLoad: structure, contents, fill control, and interoperability
// with subsequent normal operations.

#include <gtest/gtest.h>

#include <vector>

#include "btree/btree.h"
#include "btree/tree_stats.h"
#include "btree/validate.h"

namespace cbtree {
namespace {

std::vector<std::pair<Key, Value>> MakeEntries(size_t n, Key stride = 3) {
  std::vector<std::pair<Key, Value>> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    entries.emplace_back(static_cast<Key>(i) * stride + 1,
                         static_cast<Value>(i));
  }
  return entries;
}

TEST(BulkLoadTest, EmptyInput) {
  BTree tree = BTree::BulkLoad({13, MergePolicy::kAtEmpty}, {});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(ValidateTree(tree));
}

TEST(BulkLoadTest, SingleLeaf) {
  BTree tree = BTree::BulkLoad({13, MergePolicy::kAtEmpty}, MakeEntries(5));
  EXPECT_EQ(tree.size(), 5u);
  EXPECT_EQ(tree.height(), 1);
  auto result = ValidateTree(tree);
  EXPECT_TRUE(result) << result.error;
}

TEST(BulkLoadTest, LargeTreeValidatesAndFinds) {
  auto entries = MakeEntries(100000);
  BTree tree = BTree::BulkLoad({13, MergePolicy::kAtEmpty}, entries);
  EXPECT_EQ(tree.size(), entries.size());
  auto result = ValidateTree(tree);
  ASSERT_TRUE(result) << result.error;
  for (size_t i = 0; i < entries.size(); i += 997) {
    auto found = tree.Search(entries[i].first);
    ASSERT_TRUE(found.has_value()) << i;
    EXPECT_EQ(*found, entries[i].second);
  }
  EXPECT_FALSE(tree.Search(0).has_value());
  EXPECT_FALSE(tree.Search(2).has_value());
}

TEST(BulkLoadTest, FillControlsUtilizationAndHeight) {
  auto entries = MakeEntries(50000);
  BTree packed = BTree::BulkLoad({13, MergePolicy::kAtEmpty}, entries, 1.0);
  BTree loose = BTree::BulkLoad({13, MergePolicy::kAtEmpty}, entries, 0.5);
  TreeShapeStats packed_stats = CollectTreeStats(packed);
  TreeShapeStats loose_stats = CollectTreeStats(loose);
  EXPECT_NEAR(packed_stats.leaf_utilization, 1.0, 0.01);
  EXPECT_NEAR(loose_stats.leaf_utilization, 0.5, 0.05);
  EXPECT_LE(packed.height(), loose.height());
  EXPECT_TRUE(ValidateTree(packed));
  EXPECT_TRUE(ValidateTree(loose));
}

TEST(BulkLoadTest, DefaultFillMatchesStructureModel) {
  auto entries = MakeEntries(40000);
  BTree tree = BTree::BulkLoad({13, MergePolicy::kAtEmpty}, entries);
  TreeShapeStats stats = CollectTreeStats(tree);
  EXPECT_NEAR(stats.leaf_utilization, 0.69, 0.04);
  // Same ballpark as the analytic shape for the paper's reference tree.
  EXPECT_EQ(tree.height(), 5);
}

TEST(BulkLoadTest, SupportsSubsequentOperations) {
  auto entries = MakeEntries(10000);
  BTree tree = BTree::BulkLoad({13, MergePolicy::kAtEmpty}, entries, 1.0);
  // Fully packed leaves split on the very next insert into them.
  for (Key k = 0; k < 3000; ++k) tree.Insert(k * 3, k);  // between entries
  for (size_t i = 0; i < 2000; ++i) {
    EXPECT_TRUE(tree.Delete(entries[i].first));
  }
  auto result = ValidateTree(tree, {.check_links = false});
  EXPECT_TRUE(result) << result.error;
  EXPECT_EQ(tree.size(), 10000u + 3000u - 2000u);
}

TEST(BulkLoadTest, ScanSeesEverythingInOrder) {
  auto entries = MakeEntries(5000);
  BTree tree = BTree::BulkLoad({31, MergePolicy::kAtEmpty}, entries);
  std::vector<std::pair<Key, Value>> out;
  tree.Scan(std::numeric_limits<Key>::min(), kInfKey - 1, entries.size() + 1,
            &out);
  ASSERT_EQ(out.size(), entries.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, entries[i].first);
  }
}

}  // namespace
}  // namespace cbtree
