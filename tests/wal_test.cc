// WAL format and group-commit log writer: encode/decode round-trips, CRC
// rejection, segment naming, and the ShardLog durability contract (dense
// LSNs, WaitDurable watermark, group coalescing, rotation, all three fsync
// modes, idempotent Close).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "wal/log_writer.h"
#include "wal/wal_format.h"

namespace cbtree {
namespace wal {
namespace {

/// Unique scratch directory, removed (recursively) on scope exit.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/cbtree_wal_test_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path_ + "'";
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "TempDir cleanup failed: %s\n", path_.c_str());
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(WalFormatTest, Crc32cKnownAnswer) {
  // The canonical CRC32C check vector ("123456789" -> 0xE3069283).
  const char* digits = "123456789";
  EXPECT_EQ(Crc32c(reinterpret_cast<const uint8_t*>(digits), 9), 0xE3069283u);
  // Empty input, and chaining equals one-shot.
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  uint32_t chained = Crc32c(reinterpret_cast<const uint8_t*>(digits), 4);
  chained = Crc32c(reinterpret_cast<const uint8_t*>(digits) + 4, 5, chained);
  EXPECT_EQ(chained, 0xE3069283u);
}

TEST(WalFormatTest, RecordRoundTrip) {
  WalRecord record;
  record.type = RecordType::kInsert;
  record.lsn = 42;
  record.key = -7;
  record.value = 1234567890123456789ll;
  std::string wire;
  AppendRecord(record, &wire);
  ASSERT_EQ(wire.size(), kRecordFrameSize);

  WalRecord out;
  size_t consumed = 0;
  ASSERT_EQ(DecodeRecord(reinterpret_cast<const uint8_t*>(wire.data()),
                         wire.size(), &out, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(consumed, kRecordFrameSize);
  EXPECT_EQ(out.type, record.type);
  EXPECT_EQ(out.lsn, record.lsn);
  EXPECT_EQ(out.key, record.key);
  EXPECT_EQ(out.value, record.value);
}

TEST(WalFormatTest, EveryTruncationPointNeedsMore) {
  WalRecord record{RecordType::kDelete, 9, 100, 0};
  std::string wire;
  AppendRecord(record, &wire);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    WalRecord out;
    size_t consumed = 0;
    EXPECT_EQ(DecodeRecord(reinterpret_cast<const uint8_t*>(wire.data()), cut,
                           &out, &consumed),
              DecodeStatus::kNeedMore)
        << "cut at " << cut;
  }
}

TEST(WalFormatTest, CorruptPayloadByteIsRejected) {
  WalRecord record{RecordType::kInsert, 5, 77, 88};
  std::string wire;
  AppendRecord(record, &wire);
  // Flip each payload byte in turn; the CRC must catch every single one.
  for (size_t at = 8; at < wire.size(); ++at) {
    std::string bad = wire;
    bad[at] = static_cast<char>(bad[at] ^ 0x40);
    WalRecord out;
    size_t consumed = 0;
    EXPECT_EQ(DecodeRecord(reinterpret_cast<const uint8_t*>(bad.data()),
                           bad.size(), &out, &consumed),
              DecodeStatus::kError)
        << "flip at " << at;
  }
}

TEST(WalFormatTest, BadLengthPrefixIsError) {
  WalRecord record{RecordType::kInsert, 1, 2, 3};
  std::string wire;
  AppendRecord(record, &wire);
  wire[0] = static_cast<char>(kRecordPayloadSize + 1);
  WalRecord out;
  size_t consumed = 0;
  EXPECT_EQ(DecodeRecord(reinterpret_cast<const uint8_t*>(wire.data()),
                         wire.size(), &out, &consumed),
            DecodeStatus::kError);
}

TEST(WalFormatTest, BadRecordTypeIsError) {
  // Re-encode with a bogus type byte and a CRC that matches it, so only the
  // type check can reject it.
  std::string payload;
  payload.push_back(static_cast<char>(99));
  for (int i = 0; i < 24; ++i) payload.push_back(0);
  std::string wire;
  wire.push_back(static_cast<char>(kRecordPayloadSize));
  for (int i = 0; i < 3; ++i) wire.push_back(0);
  uint32_t crc = Crc32c(reinterpret_cast<const uint8_t*>(payload.data()),
                        payload.size());
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  wire += payload;
  ASSERT_EQ(wire.size(), kRecordFrameSize);
  WalRecord out;
  size_t consumed = 0;
  EXPECT_EQ(DecodeRecord(reinterpret_cast<const uint8_t*>(wire.data()),
                         wire.size(), &out, &consumed),
            DecodeStatus::kError);
}

TEST(WalFormatTest, SegmentHeaderRoundTripAndCorruption) {
  SegmentHeader header;
  header.shard = 3;
  header.start_lsn = 1000;
  std::string wire;
  AppendSegmentHeader(header, &wire);
  ASSERT_EQ(wire.size(), kSegmentHeaderSize);

  SegmentHeader out;
  ASSERT_EQ(DecodeSegmentHeader(reinterpret_cast<const uint8_t*>(wire.data()),
                                wire.size(), &out),
            DecodeStatus::kOk);
  EXPECT_EQ(out.version, kSegmentVersion);
  EXPECT_EQ(out.shard, 3u);
  EXPECT_EQ(out.start_lsn, 1000u);

  for (size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_EQ(DecodeSegmentHeader(
                  reinterpret_cast<const uint8_t*>(wire.data()), cut, &out),
              DecodeStatus::kNeedMore);
  }
  for (size_t at = 0; at < wire.size(); ++at) {
    std::string bad = wire;
    bad[at] = static_cast<char>(bad[at] ^ 0x01);
    EXPECT_EQ(DecodeSegmentHeader(reinterpret_cast<const uint8_t*>(bad.data()),
                                  bad.size(), &out),
              DecodeStatus::kError)
        << "flip at " << at;
  }
}

TEST(WalFormatTest, SegmentFileNames) {
  EXPECT_EQ(SegmentFileName(1), "wal-00000000000000000001.seg");
  uint64_t lsn = 0;
  EXPECT_TRUE(ParseSegmentFileName("wal-00000000000000000001.seg", &lsn));
  EXPECT_EQ(lsn, 1u);
  EXPECT_TRUE(ParseSegmentFileName(SegmentFileName(18446744073709551615ull),
                                   &lsn));
  EXPECT_EQ(lsn, 18446744073709551615ull);
  EXPECT_FALSE(ParseSegmentFileName("wal-1.seg", &lsn));
  EXPECT_FALSE(ParseSegmentFileName("wal-0000000000000000000x.seg", &lsn));
  EXPECT_FALSE(ParseSegmentFileName("wal-00000000000000000001.tmp", &lsn));
  EXPECT_FALSE(ParseSegmentFileName("00000000000000000001.seg", &lsn));
  EXPECT_FALSE(ParseSegmentFileName("", &lsn));
}

WalOptions TestOptions(const std::string& dir, FsyncMode mode) {
  WalOptions options;
  options.dir = dir;
  options.shard = 0;
  options.fsync = mode;
  options.group_commit_us = 50;
  return options;
}

TEST(ShardLogTest, AppendAssignsDenseLsnsAndWaitDurableCovers) {
  TempDir tmp;
  std::string error;
  auto log = ShardLog::Open(TestOptions(tmp.path(), FsyncMode::kData), &error);
  ASSERT_NE(log, nullptr) << error;

  for (uint64_t i = 1; i <= 100; ++i) {
    EXPECT_EQ(log->AppendInsert(static_cast<Key>(i), 0), i);
  }
  EXPECT_EQ(log->ThreadLastLsn(), 100u);
  log->WaitDurable(100);
  EXPECT_GE(log->DurableLsn(), 100u);
  EXPECT_EQ(log->stats().appends.load(), 100u);
  // Group commit coalesces: strictly fewer flushes than appends, and under
  // fsync=data every group costs exactly one fdatasync.
  EXPECT_GT(log->stats().groups.load(), 0u);
  EXPECT_LE(log->stats().groups.load(), 100u);
  EXPECT_EQ(log->stats().fsyncs.load(), log->stats().groups.load());
  log->Close();
}

TEST(ShardLogTest, AllFsyncModesReachDurability) {
  for (FsyncMode mode : {FsyncMode::kOff, FsyncMode::kData, FsyncMode::kFull}) {
    TempDir tmp;
    std::string error;
    auto log = ShardLog::Open(TestOptions(tmp.path(), mode), &error);
    ASSERT_NE(log, nullptr) << error;
    uint64_t last = 0;
    for (int i = 0; i < 10; ++i) last = log->AppendInsert(i, i);
    log->WaitDurable(last);
    EXPECT_GE(log->DurableLsn(), last);
    if (mode == FsyncMode::kOff) {
      EXPECT_EQ(log->stats().fsyncs.load(), 0u);
    } else {
      EXPECT_GT(log->stats().fsyncs.load(), 0u);
    }
    log->Close();
  }
}

TEST(ShardLogTest, ConcurrentAppendersGetUniqueDenseLsns) {
  TempDir tmp;
  std::string error;
  auto log = ShardLog::Open(TestOptions(tmp.path(), FsyncMode::kOff), &error);
  ASSERT_NE(log, nullptr) << error;

  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::vector<uint64_t>> lsns(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t lsn = (i % 5 == 0) ? log->AppendDelete(t * kPerThread + i)
                                    : log->AppendInsert(t * kPerThread + i, i);
        lsns[t].push_back(lsn);
        // Each thread's own LSNs are strictly increasing, and the TLS mirror
        // tracks the latest one.
        EXPECT_EQ(log->ThreadLastLsn(), lsn);
      }
      log->WaitDurable(log->ThreadLastLsn());
    });
  }
  for (auto& thread : threads) thread.join();

  std::vector<uint64_t> all;
  for (const auto& per_thread : lsns) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], i + 1) << "LSN sequence must be dense from 1";
  }
  EXPECT_EQ(log->stats().appends.load(),
            static_cast<uint64_t>(kThreads * kPerThread));
  log->Close();
}

TEST(ShardLogTest, SegmentRotationSplitsTheLog) {
  TempDir tmp;
  std::string error;
  WalOptions options = TestOptions(tmp.path(), FsyncMode::kOff);
  // Tiny segments: every few records force a rotation.
  options.segment_bytes = 4 * kRecordFrameSize;
  auto log = ShardLog::Open(options, &error);
  ASSERT_NE(log, nullptr) << error;
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) last = log->AppendInsert(i, i);
  log->WaitDurable(last);
  log->Close();
  EXPECT_GT(log->stats().rotations.load(), 10u);
}

TEST(ShardLogTest, StartLsnContinuesSequence) {
  TempDir tmp;
  std::string error;
  WalOptions options = TestOptions(tmp.path(), FsyncMode::kOff);
  options.start_lsn = 501;
  auto log = ShardLog::Open(options, &error);
  ASSERT_NE(log, nullptr) << error;
  EXPECT_EQ(log->AppendInsert(1, 1), 501u);
  EXPECT_EQ(log->AppendInsert(2, 2), 502u);
  log->Close();
}

TEST(ShardLogTest, CloseIsIdempotentAndFlushes) {
  TempDir tmp;
  std::string error;
  auto log = ShardLog::Open(TestOptions(tmp.path(), FsyncMode::kData), &error);
  ASSERT_NE(log, nullptr) << error;
  uint64_t last = 0;
  for (int i = 0; i < 32; ++i) last = log->AppendInsert(i, i);
  log->Close();
  EXPECT_GE(log->DurableLsn(), last) << "Close must flush the buffered tail";
  log->Close();  // second Close is a no-op
}

TEST(ShardLogTest, SyncAllCoversEveryThread) {
  TempDir tmp;
  std::string error;
  auto log = ShardLog::Open(TestOptions(tmp.path(), FsyncMode::kData), &error);
  ASSERT_NE(log, nullptr) << error;
  std::atomic<uint64_t> max_lsn{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        uint64_t lsn = log->AppendInsert(i, i);
        uint64_t seen = max_lsn.load();
        while (lsn > seen && !max_lsn.compare_exchange_weak(seen, lsn)) {
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  log->SyncAll();
  EXPECT_GE(log->DurableLsn(), max_lsn.load());
  log->Close();
}

TEST(ShardLogTest, OpenFailsOnUnwritableDirectory) {
  std::string error;
  WalOptions options = TestOptions("/proc/cbtree-no-such-dir/wal", //
                                   FsyncMode::kOff);
  auto log = ShardLog::Open(options, &error);
  EXPECT_EQ(log, nullptr);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace wal
}  // namespace cbtree
