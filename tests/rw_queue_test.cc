// Theorem 6 (the FCFS R/W queue) — degenerate cases, fixed-point sanity,
// monotonicity, and saturation behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rw_queue.h"

namespace cbtree {
namespace {

TEST(RwQueueTest, WritersOnlyReducesToMM1) {
  RwQueueResult result = SolveRwQueue({0.0, 0.4, 1.0, 1.0});
  EXPECT_TRUE(result.stable);
  EXPECT_DOUBLE_EQ(result.rho_w, 0.4);
  EXPECT_EQ(result.r_u, 0.0);
  EXPECT_EQ(result.r_e, 0.0);
  EXPECT_DOUBLE_EQ(result.t_a, 1.0);
}

TEST(RwQueueTest, WritersOnlySaturatesAtOne) {
  RwQueueResult result = SolveRwQueue({0.0, 1.2, 1.0, 1.0});
  EXPECT_FALSE(result.stable);
  EXPECT_DOUBLE_EQ(result.rho_w, 1.0);
}

TEST(RwQueueTest, ReadersOnlyNeverSaturates) {
  RwQueueResult result = SolveRwQueue({100.0, 0.0, 1.0, 1.0});
  EXPECT_TRUE(result.stable);
  EXPECT_EQ(result.rho_w, 0.0);
  // Concurrent readers: the drain time grows only logarithmically.
  EXPECT_NEAR(result.r_e, std::log1p(100.0), 1e-9);
}

TEST(RwQueueTest, FixedPointSatisfiesEquation) {
  RwQueueInput in{0.5, 0.2, 1.0, 0.8};
  RwQueueResult result = SolveRwQueue(in);
  ASSERT_TRUE(result.stable);
  EXPECT_NEAR(result.rho_w, RwQueueFixedPointRhs(in, result.rho_w), 1e-8);
  // Theorem 6's r_u / r_e at the fixed point.
  EXPECT_NEAR(result.r_u,
              std::log1p(result.rho_w * in.lambda_r / in.lambda_w) / in.mu_r,
              1e-12);
  EXPECT_NEAR(result.r_e,
              std::log1p((1 + result.rho_w) * in.lambda_r /
                         (in.mu_r + in.lambda_w)) /
                  in.mu_r,
              1e-12);
  EXPECT_NEAR(result.t_a,
              1.0 / in.mu_w + result.rho_w * result.r_u +
                  (1 - result.rho_w) * result.r_e,
              1e-12);
}

TEST(RwQueueTest, RhoIncreasesWithWriterArrivalRate) {
  double last = 0.0;
  for (double lw = 0.05; lw < 0.5; lw += 0.05) {
    RwQueueResult result = SolveRwQueue({0.3, lw, 1.0, 1.0});
    ASSERT_TRUE(result.stable) << "lambda_w = " << lw;
    EXPECT_GT(result.rho_w, last);
    last = result.rho_w;
  }
}

TEST(RwQueueTest, RhoIncreasesWithReaderArrivalRate) {
  double last = 0.0;
  for (double lr = 0.1; lr < 2.0; lr += 0.2) {
    RwQueueResult result = SolveRwQueue({lr, 0.2, 1.0, 1.0});
    ASSERT_TRUE(result.stable) << "lambda_r = " << lr;
    EXPECT_GT(result.rho_w, last);
    last = result.rho_w;
  }
}

TEST(RwQueueTest, RhoExceedsPureWriterUtilization) {
  // Readers ahead of writers can only lengthen the writer busy period.
  RwQueueResult with_readers = SolveRwQueue({0.5, 0.3, 1.0, 1.0});
  ASSERT_TRUE(with_readers.stable);
  EXPECT_GT(with_readers.rho_w, 0.3);
}

TEST(RwQueueTest, HeavyWriterLoadSaturates) {
  RwQueueResult result = SolveRwQueue({1.0, 0.95, 1.0, 1.0});
  EXPECT_FALSE(result.stable);
  EXPECT_EQ(result.rho_w, 1.0);
}

TEST(RwQueueTest, RuExceedsNothingWhenNoReaders) {
  RwQueueResult result = SolveRwQueue({0.0, 0.5, 2.0, 2.0});
  EXPECT_EQ(result.ReaderWait(), 0.0);
}

TEST(RwQueueTest, ReaderWaitBetweenReAndRu) {
  RwQueueResult result = SolveRwQueue({0.8, 0.1, 1.0, 1.0});
  ASSERT_TRUE(result.stable);
  // r_u uses the conditional (writer-present) geometry; both are positive.
  EXPECT_GT(result.r_u, 0.0);
  EXPECT_GT(result.r_e, 0.0);
  double rw = result.ReaderWait();
  EXPECT_GE(rw, std::min(result.r_u, result.r_e));
  EXPECT_LE(rw, std::max(result.r_u, result.r_e));
}

TEST(RwQueueTest, ScalesWithTimeUnits) {
  // Scaling all rates by c scales all times by 1/c and keeps rho fixed.
  RwQueueResult base = SolveRwQueue({0.5, 0.2, 1.0, 0.8});
  RwQueueResult scaled = SolveRwQueue({5.0, 2.0, 10.0, 8.0});
  ASSERT_TRUE(base.stable);
  ASSERT_TRUE(scaled.stable);
  EXPECT_NEAR(base.rho_w, scaled.rho_w, 1e-8);
  EXPECT_NEAR(base.r_e, scaled.r_e * 10.0, 1e-8);
  EXPECT_NEAR(base.t_a, scaled.t_a * 10.0, 1e-8);
}

}  // namespace
}  // namespace cbtree
