// The LRU buffer pool (simulator) and its analytical counterpart.

#include <gtest/gtest.h>

#include "core/buffer_model.h"
#include "core/optimistic_model.h"
#include "sim/buffer_pool.h"
#include "sim/simulator.h"

namespace cbtree {
namespace {

TEST(BufferPoolTest, HitsAndMisses) {
  BufferPool pool(2);
  EXPECT_FALSE(pool.Access(1));  // cold miss
  EXPECT_FALSE(pool.Access(2));
  EXPECT_TRUE(pool.Access(1));   // resident
  EXPECT_FALSE(pool.Access(3));  // evicts LRU = 2
  EXPECT_TRUE(pool.Access(1));
  EXPECT_FALSE(pool.Access(2));  // was evicted
  EXPECT_EQ(pool.resident(), 2u);
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.misses(), 4u);
}

TEST(BufferPoolTest, AccessRefreshesRecency) {
  BufferPool pool(2);
  pool.Access(1);
  pool.Access(2);
  pool.Access(1);  // 1 becomes MRU
  pool.Access(3);  // evicts 2, not 1
  EXPECT_TRUE(pool.Access(1));
  EXPECT_FALSE(pool.Access(2));
}

TEST(BufferPoolTest, DropRemovesResident) {
  BufferPool pool(3);
  pool.Access(1);
  pool.Access(2);
  pool.Drop(1);
  EXPECT_EQ(pool.resident(), 1u);
  EXPECT_FALSE(pool.Access(1));  // gone
  pool.Drop(99);                 // unknown: no-op
}

TEST(BufferModelTest, HitFractionsFillTopDown) {
  StructureParams st =
      MakeStructureParams(40000, 13, OperationMix{0.3, 0.5, 0.2});
  // Enough for the root and the level below it, plus half of level 3.
  double level3 = st.nodes_per_level[3];
  std::vector<double> hit = BufferHitFractions(
      st, 1.0 + st.nodes_per_level[4] + 0.5 * level3);
  EXPECT_DOUBLE_EQ(hit[5], 1.0);
  EXPECT_DOUBLE_EQ(hit[4], 1.0);
  EXPECT_NEAR(hit[3], 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(hit[2], 0.0);
  EXPECT_DOUBLE_EQ(hit[1], 0.0);
}

TEST(BufferModelTest, InfiniteBufferMeansAllInMemory) {
  ModelParams params = ModelParams::PaperDefault(10.0);
  ModelParams cached = WithBufferPool(params, 1e12);
  for (int level = 1; level <= params.height(); ++level) {
    EXPECT_DOUBLE_EQ(cached.cost.Se(level), 1.0);
  }
}

TEST(BufferModelTest, ZeroBufferMeansAllOnDisk) {
  ModelParams params = ModelParams::PaperDefault(10.0);
  ModelParams cold = WithBufferPool(params, 0.0);
  for (int level = 1; level <= params.height(); ++level) {
    EXPECT_DOUBLE_EQ(cold.cost.Se(level), 10.0);
  }
}

TEST(BufferModelTest, ResponseImprovesMonotonicallyWithBuffer) {
  ModelParams params = ModelParams::PaperDefault(10.0);
  double last = 1e18;
  for (double buffer : {0.0, 10.0, 100.0, 1000.0, 10000.0}) {
    OptimisticDescentModel model(WithBufferPool(params, buffer));
    AnalysisResult result = model.Analyze(0.2);
    ASSERT_TRUE(result.stable) << "buffer " << buffer;
    EXPECT_LE(result.per_search, last);
    last = result.per_search;
  }
}

TEST(BufferSimTest, HugeBufferApproachesAllMemoryCosts) {
  SimConfig config;
  config.algorithm = Algorithm::kOptimisticDescent;
  config.lambda = 0.02;
  config.mix = OperationMix{0.3, 0.5, 0.2};
  config.num_operations = 4000;
  config.warmup_operations = 1000;
  config.num_items = 4000;
  config.disk_cost = 10.0;
  config.buffer_pool_nodes = 100000;  // everything fits
  config.seed = 1;
  Simulator sim(config);
  SimResult result = sim.Run();
  ASSERT_FALSE(result.saturated);
  EXPECT_GT(result.buffer_hit_rate, 0.95);
  // All-resident search cost ~ height * 1 unit.
  EXPECT_NEAR(result.resp_search.mean(), sim.tree().height(),
              sim.tree().height() * 0.2);
}

TEST(BufferSimTest, TinyBufferApproachesAllDiskCosts) {
  SimConfig config;
  config.algorithm = Algorithm::kOptimisticDescent;
  config.lambda = 0.01;
  config.mix = OperationMix{0.3, 0.5, 0.2};
  config.num_operations = 3000;
  config.warmup_operations = 500;
  config.num_items = 4000;
  config.disk_cost = 10.0;
  config.buffer_pool_nodes = 2;  // only the hottest nodes survive
  config.seed = 1;
  Simulator sim(config);
  SimResult result = sim.Run();
  ASSERT_FALSE(result.saturated);
  EXPECT_LT(result.buffer_hit_rate, 0.5);
  EXPECT_GT(result.resp_search.mean(), sim.tree().height() * 5.0);
}

TEST(BufferSimTest, HitRateGrowsWithBuffer) {
  double last = -1.0;
  for (uint64_t buffer : {8u, 64u, 512u}) {
    SimConfig config;
    config.algorithm = Algorithm::kLinkType;
    config.lambda = 0.05;
    config.mix = OperationMix{0.3, 0.5, 0.2};
    config.num_operations = 4000;
    config.warmup_operations = 500;
    config.num_items = 4000;
    config.buffer_pool_nodes = buffer;
    config.seed = 1;
    SimResult result = Simulator(config).Run();
    ASSERT_FALSE(result.saturated);
    EXPECT_GT(result.buffer_hit_rate, last) << "buffer " << buffer;
    last = result.buffer_hit_rate;
  }
}

TEST(BufferSimTest, ModelTracksSimulatedBufferedResponse) {
  const uint64_t buffer = 200;
  SimConfig config;
  config.algorithm = Algorithm::kOptimisticDescent;
  config.lambda = 0.05;
  config.mix = OperationMix{0.3, 0.5, 0.2};
  config.num_operations = 8000;
  config.warmup_operations = 2000;  // warm the pool before measuring
  config.num_items = 4000;
  config.disk_cost = 10.0;
  config.buffer_pool_nodes = buffer;
  config.seed = 1;
  SimResult sim = Simulator(config).Run();
  ASSERT_FALSE(sim.saturated);
  ModelParams params = WithBufferPool(
      ModelParams::ForTree(4000, 13, 10.0, config.mix), buffer);
  OptimisticDescentModel model(params);
  AnalysisResult analysis = model.Analyze(config.lambda);
  ASSERT_TRUE(analysis.stable);
  // The top-down LRU approximation is coarser than the exact level rule;
  // allow a wider band.
  EXPECT_NEAR(sim.resp_search.mean() / analysis.per_search, 1.0, 0.4);
}

}  // namespace
}  // namespace cbtree
