// Exercises the runtime latch-discipline validator (ctree/latch_check.h):
// every legal sequence stays silent, and a seeded violation of each enforced
// rule is caught for each protocol discipline. Runs against the real tree
// implementations at the end to prove the production call sites report in.

#include "ctree/latch_check.h"

#include <cstdint>
#include <vector>

#include "ctree/ctree.h"
#include "gtest/gtest.h"

namespace cbtree {
namespace latch_check {
namespace {

// The global test handler has no user data pointer, so the recording
// vector is a global too; the fixture scopes installation/cleanup.
std::vector<ViolationInfo>* g_violations = nullptr;

void RecordViolation(const ViolationInfo& info) {
  g_violations->push_back(info);
}

class LatchCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Enabled()) {
      GTEST_SKIP() << "validator compiled out (CBTREE_LATCH_CHECK=OFF)";
    }
    g_violations = &violations_;
    previous_ = SetViolationHandlerForTest(&RecordViolation);
  }

  void TearDown() override {
    if (!Enabled()) return;
    SetViolationHandlerForTest(previous_);
    ResetThreadForTest();
    g_violations = nullptr;
  }

  bool Saw(Rule rule) const {
    for (const ViolationInfo& v : violations_) {
      if (v.rule == rule) return true;
    }
    return false;
  }

  std::vector<ViolationInfo> violations_;
  ViolationHandler previous_ = nullptr;
};

// Distinct fake latch identities; the validator only compares addresses.
struct FakeNodes {
  char node[32][1] = {};
  const void* operator[](int i) const { return &node[i]; }
};

// ---------------------------------------------------------------------------
// Legal sequences: one per discipline, silent end to end.

TEST_F(LatchCheckTest, CrabbingSearchLegalSequenceIsSilent) {
  FakeNodes n;
  ScopedOp op(Discipline::kCrabbingSearch);
  OnAcquire(n[0], 3, Mode::kShared);   // root
  OnAcquire(n[1], 2, Mode::kShared);   // couple into child
  OnRelease(n[0], Mode::kShared);
  OnAcquire(n[2], 2, Mode::kShared);   // same-level move-right
  OnRelease(n[1], Mode::kShared);
  OnAcquire(n[3], 1, Mode::kShared);   // into the leaf
  OnRelease(n[2], Mode::kShared);
  OnRelease(n[3], Mode::kShared);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LatchCheckTest, CoupledUpdateRetainedChainIsSilent) {
  FakeNodes n;
  ScopedOp op(Discipline::kCoupledUpdate);
  OnAcquire(n[0], 4, Mode::kExclusive);
  OnAcquire(n[1], 3, Mode::kExclusive);
  OnAcquire(n[2], 2, Mode::kExclusive);
  OnAcquire(n[3], 1, Mode::kExclusive);
  for (int i = 3; i >= 0; --i) OnRelease(n[i], Mode::kExclusive);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LatchCheckTest, TwoPhaseSearchAccumulatedChainIsSilent) {
  FakeNodes n;
  ScopedOp op(Discipline::kTwoPhaseSearch);
  OnAcquire(n[0], 3, Mode::kShared);
  OnAcquire(n[1], 2, Mode::kShared);
  OnAcquire(n[2], 1, Mode::kShared);
  for (int i = 0; i < 3; ++i) OnRelease(n[i], Mode::kShared);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LatchCheckTest, OptimisticDescentExclusiveLeafIsSilent) {
  FakeNodes n;
  ScopedOp op(Discipline::kOptimisticDescent);
  OnAcquire(n[0], 3, Mode::kShared);
  OnAcquire(n[1], 2, Mode::kShared);
  OnRelease(n[0], Mode::kShared);
  OnAcquire(n[2], 1, Mode::kExclusive);  // the leaf, and only the leaf
  OnRelease(n[1], Mode::kShared);
  OnRelease(n[2], Mode::kExclusive);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LatchCheckTest, BLinkSingleLatchWithMoveRightIsSilent) {
  FakeNodes n;
  ScopedOp op(Discipline::kBLink);
  OnAcquire(n[0], 2, Mode::kShared);
  OnRelease(n[0], Mode::kShared);    // release BEFORE the next acquire
  OnAcquire(n[1], 2, Mode::kShared); // right sibling
  OnRelease(n[1], Mode::kShared);
  OnAcquire(n[2], 1, Mode::kExclusive);
  OnRelease(n[2], Mode::kExclusive);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LatchCheckTest, NestedScopeAtZeroLatchesIsSilent) {
  FakeNodes n;
  ScopedOp outer(Discipline::kOptimisticDescent);
  {
    ScopedOp inner(Discipline::kCoupledUpdate);
    OnAcquire(n[0], 1, Mode::kExclusive);
    OnRelease(n[0], Mode::kExclusive);
  }
  OnAcquire(n[1], 1, Mode::kShared);
  OnRelease(n[1], Mode::kShared);
  EXPECT_TRUE(violations_.empty());
}

// ---------------------------------------------------------------------------
// kNoOpScope: latching outside any declared operation.

TEST_F(LatchCheckTest, AcquireOutsideOperationScopeIsCaught) {
  FakeNodes n;
  OnAcquire(n[0], 1, Mode::kShared);
  EXPECT_TRUE(Saw(Rule::kNoOpScope));
  OnRelease(n[0], Mode::kShared);
}

// ---------------------------------------------------------------------------
// kRelock / kUpgrade: re-acquiring a held node.

TEST_F(LatchCheckTest, RelockCaughtUnderCoupledUpdate) {
  FakeNodes n;
  ScopedOp op(Discipline::kCoupledUpdate);
  OnAcquire(n[0], 2, Mode::kExclusive);
  OnAcquire(n[0], 2, Mode::kExclusive);
  EXPECT_TRUE(Saw(Rule::kRelock));
  ResetThreadForTest();
}

TEST_F(LatchCheckTest, RelockCaughtUnderTwoPhaseSearch) {
  FakeNodes n;
  ScopedOp op(Discipline::kTwoPhaseSearch);
  OnAcquire(n[0], 2, Mode::kShared);
  OnAcquire(n[0], 2, Mode::kShared);
  EXPECT_TRUE(Saw(Rule::kRelock));
  ResetThreadForTest();
}

TEST_F(LatchCheckTest, RelockCaughtUnderCrabbingSearch) {
  FakeNodes n;
  ScopedOp op(Discipline::kCrabbingSearch);
  OnAcquire(n[0], 2, Mode::kShared);
  OnAcquire(n[0], 2, Mode::kShared);
  EXPECT_TRUE(Saw(Rule::kRelock));
  ResetThreadForTest();
}

TEST_F(LatchCheckTest, SharedToExclusiveUpgradeCaughtUnderOptimistic) {
  FakeNodes n;
  ScopedOp op(Discipline::kOptimisticDescent);
  OnAcquire(n[0], 1, Mode::kShared);
  OnAcquire(n[0], 1, Mode::kExclusive);  // classic deadlock-prone upgrade
  EXPECT_TRUE(Saw(Rule::kUpgrade));
  ResetThreadForTest();
}

TEST_F(LatchCheckTest, SharedToExclusiveUpgradeCaughtUnderBLink) {
  FakeNodes n;
  ScopedOp op(Discipline::kBLink);
  OnAcquire(n[0], 1, Mode::kShared);
  OnAcquire(n[0], 1, Mode::kExclusive);
  EXPECT_TRUE(Saw(Rule::kUpgrade));
  ResetThreadForTest();
}

// ---------------------------------------------------------------------------
// kModeForbidden: a latch mode the discipline never uses.

TEST_F(LatchCheckTest, ExclusiveForbiddenInCrabbingSearch) {
  FakeNodes n;
  ScopedOp op(Discipline::kCrabbingSearch);
  OnAcquire(n[0], 2, Mode::kExclusive);
  EXPECT_TRUE(Saw(Rule::kModeForbidden));
  ResetThreadForTest();
}

TEST_F(LatchCheckTest, SharedForbiddenInCoupledUpdate) {
  FakeNodes n;
  ScopedOp op(Discipline::kCoupledUpdate);
  OnAcquire(n[0], 2, Mode::kShared);
  EXPECT_TRUE(Saw(Rule::kModeForbidden));
  ResetThreadForTest();
}

TEST_F(LatchCheckTest, ExclusiveForbiddenInTwoPhaseSearch) {
  FakeNodes n;
  ScopedOp op(Discipline::kTwoPhaseSearch);
  OnAcquire(n[0], 1, Mode::kExclusive);
  EXPECT_TRUE(Saw(Rule::kModeForbidden));
  ResetThreadForTest();
}

TEST_F(LatchCheckTest, ExclusiveAboveLeafForbiddenInOptimisticDescent) {
  FakeNodes n;
  ScopedOp op(Discipline::kOptimisticDescent);
  OnAcquire(n[0], 2, Mode::kExclusive);  // exclusive is leaf-level only
  EXPECT_TRUE(Saw(Rule::kModeForbidden));
  ResetThreadForTest();
}

// ---------------------------------------------------------------------------
// kMaxHeldExceeded: more simultaneous latches than the discipline allows.

TEST_F(LatchCheckTest, ThirdLatchExceedsCrabbingPair) {
  FakeNodes n;
  ScopedOp op(Discipline::kCrabbingSearch);
  OnAcquire(n[0], 3, Mode::kShared);
  OnAcquire(n[1], 2, Mode::kShared);
  OnAcquire(n[2], 1, Mode::kShared);  // parent never released
  EXPECT_TRUE(Saw(Rule::kMaxHeldExceeded));
  ResetThreadForTest();
}

TEST_F(LatchCheckTest, SecondLatchExceedsBLinkSingle) {
  FakeNodes n;
  ScopedOp op(Discipline::kBLink);
  OnAcquire(n[0], 2, Mode::kShared);
  OnAcquire(n[1], 1, Mode::kShared);  // forgot release-before-acquire
  EXPECT_TRUE(Saw(Rule::kMaxHeldExceeded));
  ResetThreadForTest();
}

TEST_F(LatchCheckTest, ThirdLatchExceedsOptimisticPair) {
  FakeNodes n;
  ScopedOp op(Discipline::kOptimisticDescent);
  OnAcquire(n[0], 3, Mode::kShared);
  OnAcquire(n[1], 2, Mode::kShared);
  OnAcquire(n[2], 1, Mode::kExclusive);
  EXPECT_TRUE(Saw(Rule::kMaxHeldExceeded));
  ResetThreadForTest();
}

TEST_F(LatchCheckTest, CoupledChainDeeperThanPathCapIsCaught) {
  ScopedOp op(Discipline::kCoupledUpdate);
  // One latch per level, descending like a real (absurdly deep) chain.
  std::vector<char> nodes(kMaxPathLatches + 1);
  for (int i = 0; i <= kMaxPathLatches; ++i) {
    OnAcquire(&nodes[i], kMaxPathLatches + 1 - i, Mode::kExclusive);
  }
  EXPECT_TRUE(Saw(Rule::kMaxHeldExceeded));
  ResetThreadForTest();
}

// ---------------------------------------------------------------------------
// kOrder: acquisition against root-to-leaf order.

TEST_F(LatchCheckTest, AscendingAcquireCaughtUnderCoupledUpdate) {
  FakeNodes n;
  ScopedOp op(Discipline::kCoupledUpdate);
  OnAcquire(n[0], 1, Mode::kExclusive);
  OnAcquire(n[1], 2, Mode::kExclusive);  // climbing back up
  EXPECT_TRUE(Saw(Rule::kOrder));
  ResetThreadForTest();
}

TEST_F(LatchCheckTest, SameLevelAcquireCaughtWithoutMoveRight) {
  FakeNodes n;
  // Two-phase search has no move-right: a same-level second latch is a
  // sibling latch the discipline never takes.
  ScopedOp op(Discipline::kTwoPhaseSearch);
  OnAcquire(n[0], 2, Mode::kShared);
  OnAcquire(n[1], 2, Mode::kShared);
  EXPECT_TRUE(Saw(Rule::kOrder));
  ResetThreadForTest();
}

TEST_F(LatchCheckTest, AscendingAcquireCaughtUnderCrabbingSearch) {
  FakeNodes n;
  ScopedOp op(Discipline::kCrabbingSearch);
  OnAcquire(n[0], 1, Mode::kShared);
  OnAcquire(n[1], 3, Mode::kShared);
  EXPECT_TRUE(Saw(Rule::kOrder));
  ResetThreadForTest();
}

// ---------------------------------------------------------------------------
// kReleaseNotHeld.

TEST_F(LatchCheckTest, ReleasingUnheldNodeIsCaught) {
  FakeNodes n;
  ScopedOp op(Discipline::kBLink);
  OnRelease(n[0], Mode::kShared);
  EXPECT_TRUE(Saw(Rule::kReleaseNotHeld));
}

TEST_F(LatchCheckTest, ReleasingWrongModeIsCaught) {
  FakeNodes n;
  ScopedOp op(Discipline::kOptimisticDescent);
  OnAcquire(n[0], 1, Mode::kExclusive);
  OnRelease(n[0], Mode::kShared);  // held exclusively, released shared
  EXPECT_TRUE(Saw(Rule::kReleaseNotHeld));
  ResetThreadForTest();
}

// ---------------------------------------------------------------------------
// kLatchLeak / kNestedOpWithLatches: operation-scope hygiene.

TEST_F(LatchCheckTest, LatchHeldPastOperationEndIsCaught) {
  FakeNodes n;
  {
    ScopedOp op(Discipline::kCrabbingSearch);
    OnAcquire(n[0], 1, Mode::kShared);
    // missing OnRelease: the scope closes with one latch still held
  }
  EXPECT_TRUE(Saw(Rule::kLatchLeak));
  ResetThreadForTest();
}

TEST_F(LatchCheckTest, NestedOperationWithLatchesHeldIsCaught) {
  FakeNodes n;
  ScopedOp outer(Discipline::kOptimisticDescent);
  OnAcquire(n[0], 2, Mode::kShared);
  {
    // The optimistic restart must drop its latches before re-descending as
    // a coupled update; opening the scope while holding one is the bug.
    ScopedOp inner(Discipline::kCoupledUpdate);
  }
  EXPECT_TRUE(Saw(Rule::kNestedOpWithLatches));
  OnRelease(n[0], Mode::kShared);
  ResetThreadForTest();
}

// ---------------------------------------------------------------------------
// kEpochRequired: OLC node access / retirement with no live EpochScope.

TEST_F(LatchCheckTest, NodeAccessOutsideEpochScopeIsCaught) {
  FakeNodes n;
  RequireEpochPinned(n[0]);
  EXPECT_TRUE(Saw(Rule::kEpochRequired));
}

TEST_F(LatchCheckTest, NodeAccessInsideEpochScopeIsSilent) {
  FakeNodes n;
  EpochScope scope;
  RequireEpochPinned(n[0]);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LatchCheckTest, EpochScopesNestAndUnwind) {
  FakeNodes n;
  EXPECT_EQ(EpochDepthForTest(), 0);
  {
    EpochScope outer;
    EXPECT_EQ(EpochDepthForTest(), 1);
    {
      EpochScope inner;
      EXPECT_EQ(EpochDepthForTest(), 2);
      RequireEpochPinned(n[0]);
    }
    EXPECT_EQ(EpochDepthForTest(), 1);
    RequireEpochPinned(n[1]);
  }
  EXPECT_EQ(EpochDepthForTest(), 0);
  EXPECT_TRUE(violations_.empty());
  RequireEpochPinned(n[2]);  // depth back to zero: caught again
  EXPECT_TRUE(Saw(Rule::kEpochRequired));
}

TEST_F(LatchCheckTest, EpochRequiredRuleHasName) {
  EXPECT_STREQ(RuleName(Rule::kEpochRequired), "epoch-required");
}

// ---------------------------------------------------------------------------
// Production call sites report in: every protocol's real operations pass
// through the validator cleanly and advance the global acquisition counter.

class LatchCheckTreeTest : public LatchCheckTest,
                           public ::testing::WithParamInterface<Algorithm> {};

TEST_P(LatchCheckTreeTest, RealOperationsAreValidatedAndSilent) {
  uint64_t before = CheckedAcquires();
  auto tree = MakeConcurrentBTree(GetParam(), /*max_node_size=*/4);
  for (Key k = 1; k <= 300; ++k) {
    ASSERT_TRUE(tree->Insert(k * 7 % 1000 + 1, k));
  }
  for (Key k = 1; k <= 300; ++k) {
    tree->Search(k * 7 % 1000 + 1);
  }
  for (Key k = 1; k <= 150; ++k) {
    tree->Delete(k * 7 % 1000 + 1);
  }
  tree->CheckInvariants();
  EXPECT_TRUE(violations_.empty())
      << RuleName(violations_.front().rule) << " under "
      << DisciplineName(violations_.front().discipline);
  EXPECT_GT(CheckedAcquires(), before)
      << "tree operations bypassed the validator";
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, LatchCheckTreeTest,
                         ::testing::Values(Algorithm::kNaiveLockCoupling,
                                           Algorithm::kOptimisticDescent,
                                           Algorithm::kLinkType,
                                           Algorithm::kTwoPhaseLocking,
                                           Algorithm::kOlc),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case Algorithm::kNaiveLockCoupling:
                               return "NaiveLockCoupling";
                             case Algorithm::kOptimisticDescent:
                               return "OptimisticDescent";
                             case Algorithm::kLinkType:
                               return "LinkType";
                             case Algorithm::kTwoPhaseLocking:
                               return "TwoPhaseLocking";
                             case Algorithm::kOlc:
                               return "Olc";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace latch_check
}  // namespace cbtree
