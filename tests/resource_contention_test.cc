// Resource contention as a dilation factor (§5.2).

#include <gtest/gtest.h>

#include <cmath>

#include "core/resource_contention.h"

namespace cbtree {
namespace {

ModelParams Paper() { return ModelParams::PaperDefault(); }

TEST(ResourceContentionTest, DilationFactorBasics) {
  EXPECT_DOUBLE_EQ(DilationFactor(0.0, 20.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(DilationFactor(0.1, 20.0, 4.0), 1.0 / (1.0 - 0.5));
  EXPECT_TRUE(std::isinf(DilationFactor(0.2, 20.0, 4.0)));
  EXPECT_TRUE(std::isinf(DilationFactor(0.3, 20.0, 4.0)));
}

TEST(ResourceContentionTest, SerialWorkMatchesZeroLoadResponse) {
  ModelParams params = Paper();
  double work =
      SerialWorkPerOperation(Algorithm::kOptimisticDescent, params);
  auto analyzer = MakeAnalyzer(Algorithm::kOptimisticDescent, params);
  EXPECT_NEAR(work, analyzer->Analyze(1e-12).mean_response, 1e-6);
}

TEST(ResourceContentionTest, ManyProcessorsMatchesPlainModel) {
  ResourceContentionAnalyzer contended(Algorithm::kOptimisticDescent,
                                       Paper(), /*num_processors=*/1e9);
  auto plain = MakeAnalyzer(Algorithm::kOptimisticDescent, Paper());
  for (double lambda : {0.1, 0.5, 1.0}) {
    AnalysisResult a = contended.Analyze(lambda);
    AnalysisResult b = plain->Analyze(lambda);
    ASSERT_TRUE(a.stable);
    ASSERT_TRUE(b.stable);
    EXPECT_NEAR(a.per_insert, b.per_insert, 1e-6 * b.per_insert);
  }
}

TEST(ResourceContentionTest, FewProcessorsInflateResponse) {
  ResourceContentionAnalyzer few(Algorithm::kOptimisticDescent, Paper(),
                                 /*num_processors=*/40.0);
  auto plain = MakeAnalyzer(Algorithm::kOptimisticDescent, Paper());
  double lambda = 1.0;
  AnalysisResult contended = few.Analyze(lambda);
  AnalysisResult uncontended = plain->Analyze(lambda);
  ASSERT_TRUE(contended.stable);
  EXPECT_GT(contended.per_search, uncontended.per_search * 1.5);
}

TEST(ResourceContentionTest, CpuCanBecomeTheBottleneck) {
  // With very few processors the CPU saturates before the root lock queue.
  ResourceContentionAnalyzer tight(Algorithm::kLinkType, Paper(),
                                   /*num_processors=*/10.0);
  double max_rate = tight.MaxThroughput(/*cap=*/1e6);
  double serial =
      SerialWorkPerOperation(Algorithm::kLinkType, Paper());
  // CPU capacity = processors / serial work; the combined model cannot
  // exceed it (Link-type's lock saturation is far beyond).
  EXPECT_LE(max_rate, 10.0 / serial + 1e-6);
  EXPECT_GT(max_rate, 0.5 * 10.0 / serial);
}

TEST(ResourceContentionTest, ThroughputGrowsWithProcessors) {
  double last = 0.0;
  for (double processors : {5.0, 20.0, 80.0}) {
    ResourceContentionAnalyzer analyzer(Algorithm::kOptimisticDescent,
                                        Paper(), processors);
    double max_rate = analyzer.MaxThroughput(1e6);
    EXPECT_GT(max_rate, last);
    last = max_rate;
  }
}

TEST(ResourceContentionTest, NameReflectsComposition) {
  ResourceContentionAnalyzer analyzer(Algorithm::kNaiveLockCoupling,
                                      Paper(), 8.0);
  EXPECT_EQ(analyzer.name(), "naive-lock-coupling+resource-contention");
}

}  // namespace
}  // namespace cbtree
